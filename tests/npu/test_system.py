"""Tests for the end-to-end Figure 1 platform model."""

import pytest

from repro.net import cbr_stream
from repro.npu import CopyStrategy, ReferenceNpu, figure1_diagram


def run_npu(strategy, rate_gbps, packets=800, **kw):
    npu = ReferenceNpu(strategy=strategy, num_buffer_segments=128, **kw)
    return npu.run(cbr_stream(rate_gbps, 64), offered_gbps=rate_gbps,
                   num_packets=packets)

def test_baseline_forwards_100mbps_without_loss():
    r = run_npu(CopyStrategy.WORD, 0.1)
    assert r.dropped == 0
    assert r.forwarded == r.received
    assert r.forwarded_gbps == pytest.approx(0.1, rel=0.05)

def test_baseline_saturates_above_line_rate():
    """Offered 300 Mbps >> the ~110 Mbps the CPU sustains: drops appear
    and goodput pins at the Table 3 bound."""
    r = run_npu(CopyStrategy.WORD, 0.3, packets=1500)
    assert r.drop_rate > 0.3
    assert r.forwarded_gbps == pytest.approx(0.115, abs=0.01)

def test_line_strategy_roughly_doubles_goodput():
    word = run_npu(CopyStrategy.WORD, 0.4, packets=1200)
    line = run_npu(CopyStrategy.LINE, 0.4, packets=1200)
    assert line.forwarded_gbps > 1.7 * word.forwarded_gbps

def test_line_forwards_200mbps_cleanly():
    r = run_npu(CopyStrategy.LINE, 0.2)
    assert r.drop_rate == 0.0
    assert r.forwarded_gbps == pytest.approx(0.2, rel=0.05)

def test_conservation_received_equals_forwarded_plus_dropped():
    r = run_npu(CopyStrategy.WORD, 0.3, packets=1000)
    assert r.received == r.forwarded + r.dropped

def test_multiple_flows_spread_over_queues():
    import random
    from repro.net import uniform_flow_chooser
    npu = ReferenceNpu(strategy=CopyStrategy.LINE, num_queues=8,
                       num_buffer_segments=128)
    stream = cbr_stream(0.15, 64, flow_chooser=uniform_flow_chooser(8),
                        rng=random.Random(1))
    r = npu.run(stream, offered_gbps=0.15, num_packets=600)
    assert r.forwarded == r.received

def test_drop_rate_zero_when_no_packets_received():
    npu = ReferenceNpu()
    assert npu.run(cbr_stream(0.1, 64), 0.1, num_packets=1).drop_rate == 0.0

def test_figure1_diagram_mentions_all_blocks():
    art = figure1_diagram()
    for block in ("PowerPC", "PLB", "DDR", "ZBT", "MAC", "DP-BRAM", "OCM"):
        assert block in art
