"""Tests for PLB/DMA timing parameters."""

import pytest

from repro.npu import DmaTiming, NpuParams, PlbTiming


def test_line_transaction_is_twelve_cycles():
    """Section 5.3: '9 cycles for 9 double words and 3 cycle latency'."""
    assert PlbTiming().line_transaction_cycles == 12

def test_dma_setup_is_sixteen_cycles():
    """Section 5.3: 4 register writes x 4 cycles = 16 cycles."""
    assert DmaTiming().setup_cycles == 16

def test_dma_transfer_cycles():
    assert DmaTiming().transfer_cycles == 34

def test_plb_validation():
    with pytest.raises(ValueError):
        PlbTiming(single_read_cycles=0)
    with pytest.raises(ValueError):
        PlbTiming(line_beats=0)

def test_dma_validation():
    with pytest.raises(ValueError):
        DmaTiming(setup_registers=0)
    with pytest.raises(ValueError):
        DmaTiming(transfer_cycles=0)

def test_default_clocks_match_paper():
    p = NpuParams()
    assert p.cpu_clock_mhz == 100
    assert p.plb.clock_mhz == 100
