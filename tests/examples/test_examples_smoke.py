"""Smoke-run every script in ``examples/``.

The examples are the repo's front door, but until this suite they were
exercised by no test or CI job -- an API change could silently break
every one of them.  Each script already runs at a small (seconds-scale)
budget, so the smoke simply executes them all in a subprocess with the
repo's ``src`` on the path and asserts a clean exit and non-empty
output.  Collected by tier-1 pytest, hence by the CI tests job.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))

#: Per-script wall-clock ceiling -- far above the seconds each needs,
#: low enough that a hang fails fast.
TIMEOUT_S = 180


def test_examples_directory_is_covered():
    """Every example is parameterized below (a new script is picked up
    automatically; an emptied directory must fail, not skip)."""
    assert EXAMPLES, "examples/ has no scripts"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=str(REPO_ROOT), env=env, timeout=TIMEOUT_S,
        capture_output=True, text=True)
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}:\n{proc.stderr[-2000:]}")
    assert proc.stdout.strip(), f"{script.name} produced no output"
    assert "Traceback" not in proc.stderr, proc.stderr[-2000:]
