"""Pool x monitor integration: the event log a journaled sweep writes,
resource profiles, and structural absence on plain sweeps."""

import json
import os
import subprocess
import sys

from repro.checkpoint.faults import write_plan
from repro.checkpoint.pool import RESOURCES_KEY, run_tasks
from repro.monitor.events import events_path, read_events, validate_event_dict
from repro.monitor.resources import validate_resources_dict

from .test_pool import TASKS, WANT, _double, _explode

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def test_journaled_sweep_writes_a_schema_valid_event_log(tmp_path):
    out = run_tasks(_double, TASKS[:3], jobs=2,
                    journal_dir=str(tmp_path))
    assert out.ok

    path = events_path(str(tmp_path))
    events = read_events(path, strict=True)
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            assert validate_event_dict(json.loads(line)) == []

    start = events[0]
    assert (start.kind, start.action) == ("sweep", "start")
    assert start.extra["jobs"] == 2
    assert start.extra["names"] == ["t0", "t1", "t2"]
    assert start.extra["skipped_from_journal"] == 0

    finish = events[-1]
    assert (finish.kind, finish.action) == ("sweep", "finish")
    assert finish.extra == {"done": 3, "failed": 0}

    task_events = [e for e in events if e.kind == "task"]
    assert {e.name for e in task_events} == {"t0", "t1", "t2"}
    for name in ("t0", "t1", "t2"):
        actions = [e.action for e in task_events if e.name == name]
        assert actions == ["start", "finish"]


def test_retry_and_fail_events_carry_reasons(tmp_path):
    journal = tmp_path / "journal"
    journal.mkdir()
    plan = str(tmp_path / "plan.json")
    write_plan(plan, kill={"t1": 1})
    run_tasks(_double, TASKS[:2], jobs=1, retries=2, backoff_s=0.0,
              fault_plan=plan, journal_dir=str(journal))
    events = read_events(events_path(str(journal)), strict=True)
    retries = [e for e in events
               if (e.kind, e.action) == ("task", "retry")]
    assert retries and retries[0].name == "t1"
    assert "signal" in retries[0].extra["reason"]
    assert retries[0].attempt == 1

    out = run_tasks(_explode, [("bad", 0)], jobs=1, retries=0,
                    journal_dir=str(tmp_path / "j2"))
    events = read_events(events_path(str(tmp_path / "j2")), strict=True)
    fail = [e for e in events if (e.kind, e.action) == ("task", "fail")]
    assert fail and "boom" in fail[0].extra["reason"]
    assert events[-1].extra == {"done": 0, "failed": 1}
    assert not out.ok


def test_resource_profiles_do_not_perturb_results(tmp_path):
    profiled = run_tasks(_double, TASKS, jobs=4, resources=True,
                         journal_dir=str(tmp_path))
    assert profiled.results == WANT

    assert set(profiled.resources) == {t[0] for t in TASKS}
    for profile in profiled.resources.values():
        assert validate_resources_dict(profile) == []

    # the journal doc carries the profile (that is how a resumed sweep
    # recovers it) but the in-memory result is the clean task document
    for idx, (name, payload) in enumerate(TASKS):
        with open(tmp_path / f"{name}.json", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_resources_dict(doc.pop(RESOURCES_KEY)) == []
        assert doc == profiled.results[idx] == {"value": payload * 2}

    # finish events carry the profile for the live watcher
    finishes = [e for e in read_events(events_path(str(tmp_path)))
                if (e.kind, e.action) == ("task", "finish")]
    assert all(validate_resources_dict(e.extra["resources"]) == []
               for e in finishes)


def test_unprofiled_sweep_reports_no_resources():
    out = run_tasks(_double, TASKS[:2], jobs=2)
    assert out.resources == {}


def test_failures_carry_cpu_and_rss_when_profiled():
    out = run_tasks(_explode, [("bad", 0)], jobs=1, retries=0,
                    resources=True)
    (failure,) = out.failures
    assert failure.cpu_s is not None and failure.cpu_s >= 0
    assert failure.max_rss_kb is not None and failure.max_rss_kb > 0


def test_resumed_sweep_recovers_journaled_profiles(tmp_path):
    first = run_tasks(_double, TASKS[:2], jobs=1, resources=True,
                      journal_dir=str(tmp_path))
    assert set(first.resources) == {"t0", "t1"}
    resumed = run_tasks(_double, TASKS[:3], jobs=1, resources=True,
                        journal_dir=str(tmp_path))
    assert resumed.skipped_from_journal == 2
    assert resumed.results == WANT[:3]
    assert set(resumed.resources) == {"t0", "t1", "t2"}


def test_plain_sweep_never_imports_the_monitor():
    """Structural absence: an un-journaled sweep must not even load
    ``repro.monitor`` (overhead-by-construction, not by measurement)."""
    code = (
        "import sys\n"
        "from repro.checkpoint.pool import run_tasks\n"
        "def work(p):\n"
        "    return {'value': p}\n"
        "out = run_tasks(work, [('t0', 1)], jobs=1)\n"
        "assert out.ok\n"
        "loaded = [m for m in sys.modules if m == 'repro.monitor'\n"
        "          or m.startswith('repro.monitor.')]\n"
        "assert not loaded, loaded\n"
    )
    env = dict(os.environ, PYTHONPATH=SRC)
    subprocess.run([sys.executable, "-c", code], check=True, env=env)
