"""Checkpoint envelope, config serialization, state-dict round trips
and the feeder tape semantics."""

import json

import pytest

from repro.checkpoint import (
    CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointError,
    config_from_dict,
    config_to_dict,
    telemetry_spec_from_dict,
    telemetry_spec_to_dict,
    validate_checkpoint_dict,
)
from repro.checkpoint.feeders import (
    CountedFeeder,
    CounterView,
    Tape,
    TapeMismatchError,
)
from repro.core.mms import MmsConfig
from repro.policies import PolicySpec, make_policy
from repro.telemetry import MmsTelemetry, TelemetrySpec


def _checkpoint(**overrides):
    kwargs = dict(engine="stream", workload="script", at_ps=123,
                  params={"p": 1}, state={"s": 2})
    kwargs.update(overrides)
    return Checkpoint(**kwargs)


# ------------------------------------------------------------ envelope

def test_checkpoint_json_round_trip(tmp_path):
    ck = _checkpoint()
    again = Checkpoint.from_json(ck.to_json())
    assert again == ck
    path = str(tmp_path / "ck.json")
    ck.save(path)
    assert Checkpoint.load(path) == ck
    assert ck.schema == CHECKPOINT_SCHEMA


def test_checkpoint_rejects_bad_engine_and_clock():
    with pytest.raises(ValueError, match="unknown checkpoint engine"):
        _checkpoint(engine="quantum")
    with pytest.raises(ValueError, match="at_ps"):
        _checkpoint(at_ps=-1)


@pytest.mark.parametrize("mutate, problem", [
    (lambda d: d.update(schema=99), "schema"),
    (lambda d: d.update(engine="x"), "engine"),
    (lambda d: d.update(workload=""), "workload"),
    (lambda d: d.update(at_ps=True), "at_ps"),
    (lambda d: d.update(at_ps="soon"), "at_ps"),
    (lambda d: d.update(params=None), "params"),
    (lambda d: d.pop("state"), "state"),
])
def test_validate_checkpoint_dict_names_the_problem(mutate, problem):
    d = _checkpoint().to_dict()
    mutate(d)
    problems = validate_checkpoint_dict(d)
    assert problems and any(problem in p for p in problems)
    with pytest.raises(CheckpointError, match="invalid checkpoint"):
        Checkpoint.from_dict(d)


def test_validate_accepts_well_formed():
    assert validate_checkpoint_dict(_checkpoint().to_dict()) == []


# ------------------------------------------------- config round trips

def test_config_round_trip_is_exact():
    cfg = MmsConfig(num_flows=64, num_segments=96, num_descriptors=96,
                    policy=PolicySpec("dynamic-threshold", alpha=0.75),
                    policy_seed=17, policy_records=True)
    d = json.loads(json.dumps(config_to_dict(cfg)))
    assert config_from_dict(d) == cfg


def test_config_round_trip_no_policy():
    cfg = MmsConfig(num_flows=16, num_segments=4096, num_descriptors=2048)
    assert config_from_dict(config_to_dict(cfg)) == cfg


def test_telemetry_spec_round_trip():
    spec = TelemetrySpec(sample_every=8, percentiles=(50.0, 99.9))
    d = json.loads(json.dumps(telemetry_spec_to_dict(spec)))
    assert telemetry_spec_from_dict(d) == spec


# --------------------------------------------- policy state round trip

def _exercised_policy(name):
    """A policy mid-overload (books populated, records accrued, RED's
    RNG advanced), plus its build spec."""
    from repro.checkpoint import StreamRun, overload_params

    spec = PolicySpec(name, alpha=0.75) if name == "dynamic-threshold" \
        else PolicySpec(name)
    cfg = MmsConfig(num_flows=64, num_segments=96, num_descriptors=96,
                    policy=spec, policy_seed=11, policy_records=True)
    run = StreamRun.fresh(
        "overload",
        overload_params(cfg, "burst", num_arrivals=180, active_flows=16))
    run.run(run.horizon // 2)
    return run.eng.policy, spec, cfg


@pytest.mark.parametrize("name", ["taildrop", "red", "dynamic-threshold",
                                  "lqd"])
def test_policy_state_dict_round_trip(name):
    pol, spec, cfg = _exercised_policy(name)
    assert pol.stats.offered_segments > 0
    state = json.loads(json.dumps(pol.state_dict()))
    twin = make_policy(spec, cfg.num_segments, seed=cfg.policy_seed,
                       keep_records=True)
    twin.load_state(state)
    assert twin.state_dict() == pol.state_dict()
    assert twin.stats.records == pol.stats.records   # typed DropRecords


def test_red_rng_state_survives_round_trip():
    """RED's probabilistic drops depend on its private RNG: after a
    round trip the *future* random draws must line up exactly."""
    pol, spec, cfg = _exercised_policy("red")
    twin = make_policy(spec, cfg.num_segments, seed=cfg.policy_seed)
    twin.load_state(json.loads(json.dumps(pol.state_dict())))
    assert twin._rng.getstate() == pol._rng.getstate()
    assert twin.avg == pol.avg
    assert [twin._rng.random() for _ in range(5)] == \
        [pol._rng.random() for _ in range(5)]


# ------------------------------------------- telemetry state round trip

def test_telemetry_state_round_trip_continues_identically():
    from repro.core.commands import CommandType

    def drive(tel, lo, hi):
        for i in range(lo, hi):
            op = CommandType.ENQUEUE if i % 3 else CommandType.DEQUEUE
            tel.on_command(i * 100, op, i % 5, None, i % 4, i % 7)
            tel.on_record(i * 100, op, 2.0, 10.5 + i % 9, 4.0,
                          16.5 + i % 9)

    whole = MmsTelemetry(TelemetrySpec(sample_every=4))
    drive(whole, 0, 500)

    first = MmsTelemetry(TelemetrySpec(sample_every=4))
    drive(first, 0, 250)
    second = MmsTelemetry(TelemetrySpec(sample_every=4))
    second.load_state(json.loads(json.dumps(first.state_dict())))
    drive(second, 250, 500)
    assert json.dumps(second.snapshot().to_dict()) == \
        json.dumps(whole.snapshot().to_dict())


def test_telemetry_load_state_rejects_stride_mismatch():
    a = MmsTelemetry(TelemetrySpec(sample_every=4))
    b = MmsTelemetry(TelemetrySpec(sample_every=8))
    with pytest.raises(ValueError, match="sample_every"):
        b.load_state(a.state_dict())


# ------------------------------------------------------- feeder tapes

def test_tape_records_then_replays():
    clock = iter([10, 20, 30])
    tape = Tape()
    fn = tape.wrap(lambda: next(clock))
    assert [fn(), fn()] == [10, 20]

    tape2 = Tape(tape.log)
    tape2.start_replay()
    dead = tape2.wrap(lambda: (_ for _ in ()).throw(AssertionError))
    assert [dead(), dead()] == [10, 20]   # served from the log
    tape2.end_replay()


def test_tape_replay_mismatches_raise():
    tape = Tape([1])
    tape.start_replay()
    tape.observe(None)
    with pytest.raises(TapeMismatchError, match="asked for another"):
        tape.observe(None)
    short = Tape([1, 2])
    short.start_replay()
    short.observe(None)
    with pytest.raises(TapeMismatchError, match="consumed 1 of 2"):
        short.end_replay()


def test_counter_view_suppresses_writes_during_replay():
    store = {"n": 5}
    tape = Tape()
    view = CounterView(store, tape)
    view["n"] = view["n"] + 1          # live read-modify-write
    assert store["n"] == 6

    restored = {"n": 6}
    tape2 = Tape(tape.log)
    tape2.start_replay()
    view2 = CounterView(restored, tape2)
    # the replayed += consumes the last tape entry on its *read*; the
    # *write* must still be suppressed (replay is a phase, not
    # tape exhaustion)
    view2["n"] = view2["n"] + 1
    assert restored["n"] == 6
    tape2.end_replay()


def test_counted_feeder_fast_forward_and_finish():
    def gen(counters):
        yield 1
        yield 2
        counters["done"] = counters.get("done", 0) + 1

    store = {}
    tape = Tape()
    feeder = CountedFeeder(gen(CounterView(store, tape)), tape)
    assert list(feeder) == [1, 2]
    assert feeder.finished and feeder.ops == 2
    assert store == {"done": 1}

    st = feeder.state_dict()
    tape2 = Tape(st["tape"])
    twin = CountedFeeder(gen(CounterView(dict(store), tape2)), tape2)
    twin.fast_forward(st["ops"], st["finished"])
    assert twin.finished
    with pytest.raises(StopIteration):
        next(twin)


def test_counted_feeder_fast_forward_detects_divergence():
    def gen():
        yield 1

    feeder = CountedFeeder(gen(), Tape())
    with pytest.raises(TapeMismatchError, match="finished after 1 of 3"):
        feeder.fast_forward(3, False)

    feeder2 = CountedFeeder(gen(), Tape())
    with pytest.raises(TapeMismatchError, match="yielded another op"):
        feeder2.fast_forward(0, True)
