"""Parse-time validation of the pool/checkpoint CLI flags: bad values
die at the parser with messages naming the constraint, never deep in a
half-finished sweep."""

import json

import pytest

from repro.analysis.cli import build_parser, main


@pytest.fixture()
def parser():
    return build_parser()


def _parse_error(parser, capsys, argv):
    with pytest.raises(SystemExit) as exc:
        parser.parse_args(argv)
    assert exc.value.code == 2           # argparse usage error
    return capsys.readouterr().err


@pytest.mark.parametrize("argv, needle", [
    (["sweep", "all", "--jobs", "0"], "at least one worker"),
    (["sweep", "all", "--jobs", "many"], "must be an integer"),
    (["run", "all", "--jobs", "-3"], "at least one worker"),
    (["sweep", "all", "--timeout", "-5"], "must be positive"),
    (["sweep", "all", "--timeout", "0"], "must be positive"),
    (["sweep", "all", "--timeout", "soon"], "number of seconds"),
    (["sweep", "all", "--retries", "-1"], ">= 0"),
    (["sweep", "all", "--backoff", "-0.5"], ">= 0"),
    (["checkpoint-run", "latency-lqd-burst", "--checkpoint-every", "0"],
     ">= 1 ps"),
    (["checkpoint-run", "latency-lqd-burst", "--checkpoint-every", "x"],
     "picosecond count"),
])
def test_bad_flag_values_fail_at_parse_time(parser, capsys, argv, needle):
    err = _parse_error(parser, capsys, argv)
    assert needle in err


def test_good_flag_values_parse(parser):
    args = parser.parse_args(
        ["sweep", "all", "--jobs", "4", "--timeout", "2.5",
         "--retries", "2", "--backoff", "0.05"])
    assert (args.jobs, args.timeout, args.retries, args.backoff) == \
        (4, 2.5, 2, 0.05)


def test_checkpoint_run_needs_scenario_or_resume(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["checkpoint-run"])
    assert "scenario name or --resume-from" in str(exc.value)


def test_checkpoint_run_rejects_unknown_scenario(parser, capsys):
    err = _parse_error(parser, capsys, ["checkpoint-run", "no-such"])
    assert "invalid choice" in err


def test_checkpoint_run_round_trip_smoke(tmp_path, capsys):
    """End-to-end through main(): run fresh with periodic checkpoints,
    resume the last one, and get the identical summary."""
    ckpt_dir = str(tmp_path / "ckpts")
    fresh_json = str(tmp_path / "fresh.json")
    main(["checkpoint-run", "latency-lqd-burst", "--fast", "--quiet",
          "--checkpoint-every", "400000000", "--checkpoint-dir", ckpt_dir,
          "--json", fresh_json])
    capsys.readouterr()
    files = sorted((tmp_path / "ckpts").glob("*.json"),
                   key=lambda p: int(p.stem.rsplit("-", 1)[1]))
    assert files, "periodic checkpointing produced no files"

    resumed_json = str(tmp_path / "resumed.json")
    main(["checkpoint-run", "--resume-from", str(files[-1]),
          "--quiet", "--json", resumed_json])
    capsys.readouterr()

    fresh = json.load(open(fresh_json))
    resumed = json.load(open(resumed_json))
    assert fresh["result"] == resumed["result"]
    assert fresh["engine"] == resumed["engine"]
    assert fresh["scenario"] == resumed["scenario"] == "latency-lqd-burst"
    assert resumed["checkpoints"] == []      # resume ran straight through
