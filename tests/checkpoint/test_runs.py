"""Checkpointable run drivers: harness equivalence, structural
absence of checkpoint machinery on the plain path, and driver
validation."""

import dataclasses
import inspect
import types

import pytest

from repro.checkpoint import (
    Checkpoint,
    CheckpointError,
    KernelRun,
    StreamRun,
    overload_params,
    resume_run,
    run_with_checkpoints,
    script_params,
    snapshot_stream,
)
from repro.core.mms import MmsConfig
from repro.engines.stream import StreamMms
from repro.policies import PolicySpec
from repro.policies.harness import OVERLOAD_MMS_CFG, run_overload


def _overload(engine_label="fast", **kw):
    spec = PolicySpec("red")
    cfg = dataclasses.replace(OVERLOAD_MMS_CFG, policy=spec,
                              policy_seed=11, policy_records=True)
    return overload_params(cfg, "burst", num_arrivals=240,
                           active_flows=32, engine_label=engine_label,
                           **kw)


# ----------------------------------------------- harness equivalence

def test_stream_run_matches_plain_harness():
    """A checkpointable overload run must reproduce the plain harness
    byte-for-byte -- the instrumentation is observationally free."""
    base = run_overload(PolicySpec("red"), "burst", num_arrivals=240,
                        active_flows=32, seed=11, engine="fast",
                        keep_records=True)
    run = StreamRun.fresh("overload", _overload())
    assert run.finish() == base


def test_kernel_run_matches_plain_harness():
    base = run_overload(PolicySpec("red"), "burst", num_arrivals=240,
                        active_flows=32, seed=11, engine="reference",
                        keep_records=True)
    run = KernelRun.fresh("overload", _overload("reference"))
    assert run.finish() == base


def test_resume_run_dispatches_by_engine():
    stream = StreamRun.fresh("overload", _overload())
    stream.run(stream.horizon // 4)
    kernel = KernelRun.fresh("overload", _overload("reference"))
    kernel.run(kernel.horizon // 4)
    assert isinstance(resume_run(stream.checkpoint()), StreamRun)
    assert isinstance(resume_run(kernel.checkpoint()), KernelRun)


# ---------------------------------------------- structural absence

def test_plain_harness_path_carries_no_checkpoint_machinery():
    """When checkpointing is off, it is *structurally* absent: the
    plain harnesses hand the engine raw generators (no tape wrappers,
    no counter views), so the hot path pays nothing."""
    from repro.core.workloads import overload_feed_ops
    cfg = dataclasses.replace(OVERLOAD_MMS_CFG, policy=PolicySpec("red"),
                              policy_seed=11)
    eng = StreamMms(cfg)
    eng.add_feeder(0, overload_feed_ops("burst", 0, 20, 8, 1000, {}))
    assert all(isinstance(f, types.GeneratorType) for f in eng._feeders)
    # and the snapshotter refuses such an engine rather than silently
    # producing a checkpoint that cannot resume
    with pytest.raises(CheckpointError, match="CountedFeeder"):
        snapshot_stream(eng)


@pytest.mark.parametrize("module_name", [
    "repro.engines.stream",
    "repro.engines.harnesses",
    "repro.core.workloads",
    "repro.policies.harness",
])
def test_plain_path_sources_never_import_checkpoint(module_name):
    import importlib
    src = inspect.getsource(importlib.import_module(module_name))
    for stmt in ("import repro.checkpoint", "from repro.checkpoint",
                 "from repro import checkpoint"):
        assert stmt not in src, \
            f"{module_name} must not depend on the checkpoint package"


# ------------------------------------------------------- validation

def test_unknown_workloads_are_rejected():
    with pytest.raises(CheckpointError, match="unknown stream workload"):
        StreamRun("quantum", {})
    with pytest.raises(CheckpointError, match="unknown kernel workload"):
        KernelRun("load", {})


def test_resume_rejects_engine_mismatch():
    stream = StreamRun.fresh("overload", _overload())
    stream.run(1_000_000)
    ckpt = stream.checkpoint()
    with pytest.raises(CheckpointError, match="cannot resume"):
        KernelRun.resume(ckpt)
    kernel = KernelRun.fresh("overload", _overload("reference"))
    kernel.run(1_000_000)
    with pytest.raises(CheckpointError, match="cannot resume"):
        StreamRun.resume(kernel.checkpoint())


def test_kernel_resume_refuses_tampered_anchor():
    run = KernelRun.fresh("overload", _overload("reference"))
    run.run(run.horizon // 4)
    doc = run.checkpoint().to_dict()
    doc["state"]["fingerprint"]["digest"] = "0" * 64
    with pytest.raises(CheckpointError, match="did not re-anchor"):
        KernelRun.resume(Checkpoint.from_dict(doc))


def test_script_params_drain_needs_three_mark_done_scripts():
    cfg = MmsConfig(num_flows=16, num_segments=64, num_descriptors=64)
    with pytest.raises(CheckpointError, match="exactly 3"):
        script_params(cfg, [[1000], [1000]], horizon_ps=10**9,
                      mark_done=True, drain=True, drain_period_ps=1000,
                      drain_active_flows=4)
    with pytest.raises(CheckpointError, match="mark_done"):
        script_params(cfg, [[1000]] * 3, horizon_ps=10**9,
                      mark_done=False, drain=True, drain_period_ps=1000,
                      drain_active_flows=4)


# ----------------------------------------------- periodic checkpoints

def test_run_with_checkpoints_counts_interior_boundaries():
    run = StreamRun.fresh("overload", _overload())
    sunk = []
    horizon = run.horizon
    every = horizon // 4
    n = run_with_checkpoints(run, every, sunk.append)
    assert n == len(sunk) == 3          # the final state is not sunk
    assert [c.at_ps for c in sunk] == [every, 2 * every, 3 * every]
    assert run.now == horizon


def test_run_with_checkpoints_rejects_nonpositive_period():
    run = StreamRun.fresh("overload", _overload())
    with pytest.raises(CheckpointError, match="positive"):
        run_with_checkpoints(run, 0, lambda c: None)
