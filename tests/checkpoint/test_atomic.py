"""Atomic persistence: a reader never sees a torn artifact."""

import json
import os

import pytest

from repro.checkpoint.atomic import (
    read_json,
    write_json_atomic,
    write_text_atomic,
)


def test_write_text_atomic_creates_and_replaces(tmp_path):
    path = str(tmp_path / "doc.txt")
    write_text_atomic(path, "one\n")
    assert open(path).read() == "one\n"
    write_text_atomic(path, "two\n")
    assert open(path).read() == "two\n"


def test_write_json_atomic_round_trips_with_newline(tmp_path):
    path = str(tmp_path / "doc.json")
    payload = {"b": [1, 2], "a": {"nested": None}}
    write_json_atomic(path, payload)
    text = open(path).read()
    assert text.endswith("\n")
    assert text == json.dumps(payload, indent=2) + "\n"
    assert read_json(path) == payload


def test_failed_write_preserves_old_content_and_leaves_no_temp(tmp_path):
    path = str(tmp_path / "doc.json")
    write_json_atomic(path, {"ok": 1})

    class Unserializable:
        pass

    with pytest.raises(TypeError):
        write_json_atomic(path, {"bad": Unserializable()})
    # the original artifact survives, and the directory holds no
    # abandoned temp files
    assert read_json(path) == {"ok": 1}
    assert os.listdir(tmp_path) == ["doc.json"]


def test_temp_lives_in_target_directory(tmp_path, monkeypatch):
    """os.replace must not cross filesystems, so the temp file has to
    be created next to the target."""
    seen = {}
    import tempfile as _tempfile
    orig = _tempfile.mkstemp

    def spy(**kwargs):
        seen.update(kwargs)
        return orig(**kwargs)

    monkeypatch.setattr("repro.checkpoint.atomic.tempfile.mkstemp", spy)
    write_text_atomic(str(tmp_path / "x.txt"), "y")
    assert seen["dir"] == str(tmp_path)
