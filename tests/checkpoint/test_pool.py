"""The fault-tolerant worker pool: recovery, journaling, interrupts."""

import json
import os
import signal
import threading
import time

import pytest

from repro.checkpoint.faults import _claim, write_plan
from repro.checkpoint.pool import PoolOutcome, TaskFailure, run_tasks


def _double(payload):
    return {"value": payload * 2}


def _slow_double(payload):
    time.sleep(0.05 * (payload % 3))
    return {"value": payload * 2}


def _sleep_forever(_payload):
    time.sleep(600)
    return {}


def _fail_once(payload):
    """Raises on the first execution, succeeds on the retry (the
    marker file is the cross-process attempt counter)."""
    marker = payload + ".attempted"
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return {"value": "recovered"}
    os.close(fd)
    raise RuntimeError("transient failure")


def _explode(_payload):
    raise RuntimeError("boom")


TASKS = [(f"t{i}", i) for i in range(8)]
WANT = [{"value": i * 2} for i in range(8)]


# ------------------------------------------------------------ happy path

def test_results_are_submission_ordered():
    out = run_tasks(_slow_double, TASKS, jobs=4)
    assert out.ok
    assert out.results == WANT


def test_serial_and_parallel_agree():
    assert run_tasks(_double, TASKS, jobs=1).results == \
        run_tasks(_double, TASKS, jobs=8).results


# -------------------------------------------------------------- recovery

def test_killed_worker_is_requeued_and_results_match_clean_run(tmp_path):
    plan = str(tmp_path / "faults.json")
    write_plan(plan, kill={"t3": 1})
    out = run_tasks(_double, TASKS, jobs=3, retries=2, backoff_s=0.0,
                    fault_plan=plan)
    assert out.ok
    assert out.results == WANT            # identical to a fault-free run


def test_exhausted_retries_produce_a_failure_entry(tmp_path):
    plan = str(tmp_path / "faults.json")
    write_plan(plan, kill={"t2": 3})
    out = run_tasks(_double, TASKS, jobs=2, retries=1, backoff_s=0.0,
                    fault_plan=plan)
    assert not out.ok
    assert out.results[2] is None
    assert [r for i, r in enumerate(out.results) if i != 2] == \
        [w for i, w in enumerate(WANT) if i != 2]
    (failure,) = out.failures
    assert failure.name == "t2" and failure.attempts == 2
    assert "killed by signal SIGKILL" in failure.reason


def test_hung_worker_trips_timeout_and_retry_recovers(tmp_path):
    plan = str(tmp_path / "faults.json")
    write_plan(plan, hang={"t1": 1}, hang_seconds=30.0)
    out = run_tasks(_double, TASKS[:3], jobs=3, timeout_s=0.5,
                    retries=1, backoff_s=0.0, fault_plan=plan)
    assert out.ok
    assert out.results == WANT[:3]


def test_task_exception_is_reported_not_fatal():
    out = run_tasks(_explode, [("bad", 0)], jobs=1, retries=0)
    assert not out.ok
    (failure,) = out.failures
    assert failure.name == "bad"
    assert "RuntimeError: boom" in failure.reason


def test_task_exception_is_retried(tmp_path):
    out = run_tasks(_fail_once, [("flaky", str(tmp_path / "m"))],
                    jobs=1, retries=1, backoff_s=0.0)
    assert out.ok
    assert out.results == [{"value": "recovered"}]


# -------------------------------------------------------------- journal

def test_journal_skips_completed_work(tmp_path):
    journal = str(tmp_path / "journal")
    os.makedirs(journal)
    for name, i in TASKS[:5]:
        with open(os.path.join(journal, name + ".json"), "w") as fh:
            json.dump({"value": i * 2}, fh)
    # _explode would fail every task: only the three unjournaled ones
    # run, so the outcome proves the journaled five were skipped
    out = run_tasks(_explode, TASKS, jobs=2, retries=0,
                    journal_dir=journal)
    assert out.skipped_from_journal == 5
    assert out.results[:5] == WANT[:5]
    assert len(out.failures) == 3


def test_torn_journal_entries_rerun(tmp_path):
    journal = str(tmp_path / "journal")
    os.makedirs(journal)
    with open(os.path.join(journal, "t0.json"), "w") as fh:
        fh.write('{"value": 0')             # torn write
    with open(os.path.join(journal, "t1.json"), "w") as fh:
        json.dump({"__error__": "old failure"}, fh)
    out = run_tasks(_double, TASKS[:3], jobs=2, journal_dir=journal)
    assert out.ok
    assert out.skipped_from_journal == 0    # torn + error docs re-ran
    assert out.results == WANT[:3]
    # and the journal now holds the clean results, atomically written
    with open(os.path.join(journal, "t1.json")) as fh:
        assert json.load(fh) == {"value": 2}


# ------------------------------------------------------------ heartbeats

def test_heartbeats_record_lifecycle_events(tmp_path):
    journal = str(tmp_path / "journal")
    plan = str(tmp_path / "faults.json")
    write_plan(plan, kill={"t1": 1})
    out = run_tasks(_double, TASKS[:3], jobs=2, retries=2,
                    backoff_s=0.0, journal_dir=journal, fault_plan=plan)
    assert out.ok
    with open(os.path.join(journal, "t1.heartbeat.json")) as fh:
        doc = json.load(fh)
    assert doc["schema"] == 1 and doc["name"] == "t1"
    events = [(e["event"], e["attempt"]) for e in doc["events"]]
    assert events == [("start", 1), ("retry", 1), ("start", 2),
                      ("finish", 2)]
    elapsed = [e["elapsed_s"] for e in doc["events"]]
    assert elapsed == sorted(elapsed) and elapsed[0] >= 0
    with open(os.path.join(journal, "t0.heartbeat.json")) as fh:
        smooth = [e["event"] for e in json.load(fh)["events"]]
    assert smooth == ["start", "finish"]


def test_heartbeats_mark_exhausted_tasks_failed(tmp_path):
    journal = str(tmp_path / "journal")
    out = run_tasks(_explode, [("bad", 0)], jobs=1, retries=1,
                    backoff_s=0.0, journal_dir=journal)
    assert not out.ok
    with open(os.path.join(journal, "bad.heartbeat.json")) as fh:
        events = [(e["event"], e["attempt"])
                  for e in json.load(fh)["events"]]
    assert events == [("start", 1), ("retry", 1), ("start", 2),
                      ("fail", 2)]


def test_failures_carry_wall_clock():
    out = run_tasks(_explode, [("bad", 0)], jobs=1, retries=0)
    (failure,) = out.failures
    assert failure.wall_clock_s is not None
    assert failure.wall_clock_s >= 0


# ------------------------------------------------------------ interrupts

def _quick_then_slow(payload):
    if payload == 1:
        return {"value": 2}
    time.sleep(600)
    return {}


def test_sigint_keeps_finished_results_and_reports_the_rest():
    def interrupt_soon():
        time.sleep(0.4)
        os.kill(os.getpid(), signal.SIGINT)

    threading.Thread(target=interrupt_soon, daemon=True).start()
    tasks = [("quick", 1)] + [(f"slow{i}", i) for i in range(4)]
    out = run_tasks(_quick_then_slow, tasks, jobs=1)
    assert out.interrupted == signal.SIGINT
    assert not out.ok
    assert out.results[0] == {"value": 2}   # finished before the signal
    interrupted = {f.name for f in out.failures}
    assert interrupted and interrupted <= {f"slow{i}" for i in range(4)}


# ------------------------------------------------------------ validation

@pytest.mark.parametrize("kwargs, match", [
    (dict(jobs=0), "jobs must be >= 1"),
    (dict(jobs=2, timeout_s=-5), "timeout must be positive"),
    (dict(jobs=2, retries=-1), "retries must be >= 0"),
    (dict(jobs=2, backoff_s=-0.1), "backoff must be >= 0"),
])
def test_argument_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        run_tasks(_double, TASKS, **kwargs)


def test_outcome_ok_semantics():
    assert PoolOutcome(results=[]).ok
    assert not PoolOutcome(results=[],
                           failures=[TaskFailure("x", 1, "r")]).ok
    assert not PoolOutcome(results=[], interrupted=2).ok


# ------------------------------------------------------- fault claiming

def test_fault_claims_are_exactly_once(tmp_path):
    plan = str(tmp_path / "faults.json")
    write_plan(plan, kill={"t": 1})
    assert _claim(plan, "kill", "t", 0) is True
    assert _claim(plan, "kill", "t", 0) is False   # second taker loses
    assert _claim(plan, "kill", "t", 1) is True    # distinct occurrence
