"""Differential resume-identity fuzz: split anywhere, resume, compare.

The checkpoint contract is *byte* identity, not statistical sameness: a
run split at a random rest point, serialized through JSON, and resumed
in a fresh process-equivalent (new engine objects, re-derived feeders)
must produce the same traces, dispatch log, latency records, drop
records, telemetry snapshot and final functional state as an unbroken
run.  This suite fuzzes that over:

* rich mixed-op scripts (every command type) on the stream engine,
  with multi-split chains (resume of a resume),
* the same scripts on the kernel engine's replay-anchored checkpoints,
* all four latency-family policies (taildrop, red, dynamic-threshold,
  lqd) under the overload workload, on both engines,
* drained overload scripts (closed-loop ``queued_packets`` probing and
  shared counters crossing the checkpoint boundary),
* edge splits: before the first event and after the workload drained.

The observation machinery is borrowed from the engine-equivalence fuzz
(``tests/engines/test_stream_fuzz``) so "everything observable" means
exactly what it means there.
"""

import dataclasses
import json
import random

import pytest

from repro.checkpoint import (
    Checkpoint,
    KernelRun,
    StreamRun,
    functional_digest,
    overload_params,
    script_params,
)
from repro.core.commands import CommandType
from repro.core.mms import MmsConfig
from repro.policies import PolicySpec
from repro.telemetry import TelemetrySpec
from tests.engines.test_stream_fuzz import (
    Capture,
    HORIZON,
    TELE_SPEC,
    _capture_mem,
    assert_identical,
    make_mixed_scripts,
    run_stream,
)

MIXED_CFG = MmsConfig(num_flows=16, num_segments=4096,
                      num_descriptors=2048)

LATENCY_POLICIES = (
    PolicySpec("taildrop"),
    PolicySpec("red"),
    PolicySpec("dynamic-threshold", alpha=1.0),
    PolicySpec("lqd"),
)


def _attach(run: StreamRun) -> Capture:
    """Hook one engine segment the way the engine fuzz does."""
    cap = Capture()
    _capture_mem(cap, run.eng.pqm.mem)
    eng = run.eng
    eng.trace_hook = lambda cmd, result, trace: cap.cmds.append(
        (cmd[0].value, cmd[1], repr(result), len(trace), eng.now))
    return cap


def _finalize(run: StreamRun, caps, horizon=HORIZON) -> Capture:
    """Fold per-segment captures plus the finished run's record-derived
    observables into one full-run Capture (the restored ``_done`` list
    spans the whole run, so latency records and telemetry come from the
    final engine alone)."""
    cap = Capture()
    cap.traces = [t for c in caps for t in c.traces]
    cap.cmds = [c_ for c in caps for c_ in c.cmds]
    records = run.eng.latency_records(horizon, with_ops=True)
    for t, f, e, d, ee, op in records:
        run.probe.on_record(t, op, f, e, d, ee)
    cap.records = [(t, f, e, d, ee) for t, f, e, d, ee, _op in records]
    cap.telemetry = json.dumps(run.probe.snapshot().to_dict())
    cap.snapshot_final(run.eng.pqm, run.eng.policy, run.eng.now,
                       run.eng.commands_executed)
    return cap


def run_stream_with_splits(params, split_points) -> Capture:
    """Drive a StreamRun, checkpointing and resuming (through a full
    JSON round-trip) at every split point, and capture everything."""
    run = StreamRun.fresh("script", params)
    caps = [_attach(run)]
    for at in sorted(split_points):
        run.run(at)
        blob = run.checkpoint().to_json()
        run = StreamRun.resume(Checkpoint.from_json(blob))
        caps.append(_attach(run))
    run.run(HORIZON)
    return _finalize(run, caps)


def _span(cap: Capture) -> int:
    """The active span of a captured run: the last command dispatch
    time (the run's final ``now`` is just the horizon)."""
    return cap.cmds[-1][4]


@pytest.mark.parametrize("seed", [1, 7, 2005])
def test_mixed_scripts_stream_split_identical(seed):
    scripts = make_mixed_scripts(seed)
    unbroken = run_stream(MIXED_CFG, [list(s) for s in scripts])
    span = _span(unbroken)
    rng = random.Random(seed * 97 + 5)
    params = script_params(MIXED_CFG, scripts, horizon_ps=HORIZON,
                           telemetry=TELE_SPEC)
    # two independent single splits plus one two-split chain
    for splits in ([rng.randrange(1, span)],
                   [rng.randrange(1, span)],
                   sorted(rng.randrange(1, span) for _ in range(2))):
        assert_identical(unbroken, run_stream_with_splits(params, splits))


def test_mixed_scripts_stream_edge_splits():
    scripts = make_mixed_scripts(1)
    unbroken = run_stream(MIXED_CFG, [list(s) for s in scripts])
    params = script_params(MIXED_CFG, scripts, horizon_ps=HORIZON,
                           telemetry=TELE_SPEC)
    # before the first event, and after every feeder drained (but
    # short of the horizon: the final clock must still agree)
    assert_identical(unbroken, run_stream_with_splits(params, [0]))
    assert_identical(unbroken,
                     run_stream_with_splits(params, [HORIZON // 2]))


@pytest.mark.parametrize("seed", [1, 7])
def test_mixed_scripts_kernel_split_identical(seed):
    scripts = make_mixed_scripts(seed)
    params = script_params(MIXED_CFG, scripts, horizon_ps=HORIZON,
                           telemetry=TELE_SPEC)
    whole = KernelRun.fresh("script", params)
    base = whole.finish()
    base_digest = functional_digest(whole.mms, whole.store)
    base_tel = json.dumps(whole.probe.snapshot().to_dict())

    rng = random.Random(seed + 31)
    split = rng.randrange(1, _probe_span(whole.probe))
    run = KernelRun.fresh("script", params)
    run.run(split)
    blob = run.checkpoint().to_json()
    resumed = KernelRun.resume(Checkpoint.from_json(blob))
    assert resumed.finish() == base
    assert functional_digest(resumed.mms, resumed.store) == base_digest
    assert json.dumps(resumed.probe.snapshot().to_dict()) == base_tel


# ---------------------------------------------- latency-family policies

def _probe_span(probe) -> int:
    """The last telemetry occupancy sample's time: inside the active
    region of the run by construction."""
    return probe.state_dict()["series"][-1][0]


def _latency_cfg(policy: PolicySpec) -> MmsConfig:
    from repro.policies.harness import OVERLOAD_MMS_CFG
    return dataclasses.replace(OVERLOAD_MMS_CFG, policy=policy,
                               policy_seed=11, policy_records=True)


def _overload_state(run) -> tuple:
    """Everything a latency scenario observes: the typed result, the
    policy books (DropRecords included) and the telemetry snapshot."""
    result = run.finish()
    if isinstance(run, StreamRun):
        policy = run.eng.policy
    else:
        policy = run.mms.policy
    return (result, policy.state_dict(),
            json.dumps(run.probe.snapshot().to_dict()))


@pytest.mark.parametrize("policy", LATENCY_POLICIES,
                         ids=lambda p: p.name)
def test_latency_policies_stream_split_identical(policy):
    params = overload_params(_latency_cfg(policy), "burst",
                             num_arrivals=240, active_flows=32,
                             telemetry=TelemetrySpec())
    whole = StreamRun.fresh("overload", params)
    base = _overload_state(whole)
    span = _probe_span(whole.probe)
    rng = random.Random(hash(policy.name) & 0xFFFF)
    for _ in range(2):
        run = StreamRun.fresh("overload", params)
        run.run(rng.randrange(1, span))
        blob = run.checkpoint().to_json()
        resumed = StreamRun.resume(Checkpoint.from_json(blob))
        assert _overload_state(resumed) == base


@pytest.mark.parametrize("policy", LATENCY_POLICIES,
                         ids=lambda p: p.name)
def test_latency_policies_kernel_split_identical(policy):
    params = overload_params(_latency_cfg(policy), "burst",
                             num_arrivals=240, active_flows=32,
                             telemetry=TelemetrySpec(),
                             engine_label="reference")
    whole = KernelRun.fresh("overload", params)
    base = _overload_state(whole)
    span = _probe_span(whole.probe)
    run = KernelRun.fresh("overload", params)
    run.run(random.Random(len(policy.name)).randrange(1, span))
    blob = run.checkpoint().to_json()
    resumed = KernelRun.resume(Checkpoint.from_json(blob))
    assert _overload_state(resumed) == base


# ----------------------------------------- drained scripts (counters)

def make_overload_op_lists(seed, per_port=90, active_flows=12):
    """Enqueue-only random ingress scripts as plain op lists (the
    drained-script workload encodes these into checkpoint params)."""
    rng = random.Random(seed)
    scripts = []
    for _port in range(3):
        items = []
        open_left = 0
        flow = 0
        for _i in range(per_port):
            if open_left == 0 and rng.random() < 0.4:
                items.append(rng.randrange(0, 200000))
            if open_left == 0:
                flow = rng.randrange(active_flows)
                open_left = rng.randrange(1, 4)
            open_left -= 1
            items.append((CommandType.ENQUEUE, flow, None,
                          open_left == 0, 64))
        scripts.append(items)
    return scripts


@pytest.mark.parametrize("seed", [3, 19])
def test_drained_scripts_stream_split_identical(seed):
    """The hard feeder case: a closed-loop drain probing
    ``queued_packets`` and bumping shared counters across the split."""
    cfg = MmsConfig(num_flows=16, num_segments=40, num_descriptors=36,
                    policy=PolicySpec("red"), policy_seed=11,
                    policy_records=True)
    scripts = make_overload_op_lists(seed)
    params = script_params(cfg, scripts, horizon_ps=HORIZON,
                           mark_done=True, drain=True,
                           drain_period_ps=2 * round(10.5 * 8000),
                           drain_active_flows=12, telemetry=TELE_SPEC)

    whole = StreamRun.fresh("script", params)
    caps = [_attach(whole)]
    whole.run(HORIZON)
    base = _finalize(whole, caps)
    base_counters = dict(whole.store)
    span = _span(base)

    rng = random.Random(seed * 13 + 1)
    splits = sorted(rng.randrange(1, span) for _ in range(2))
    run = StreamRun.fresh("script", params)
    caps = [_attach(run)]
    for at in splits:
        run.run(at)
        blob = run.checkpoint().to_json()
        run = StreamRun.resume(Checkpoint.from_json(blob))
        caps.append(_attach(run))
    run.run(HORIZON)
    assert_identical(base, _finalize(run, caps))
    assert dict(run.store) == base_counters
    assert base_counters["dequeued"] > 0
    assert run.eng.policy.stats.dropped_segments > 0, \
        "fuzz case never exercised the policy"
