"""``ScenarioSpec.spec_hash()``: the cache-key primitive.

Equal specs must hash equal, any field change must change the hash,
and the canonical form must be insensitive to dict ordering -- the
properties the serving daemon's content-addressed cache rests on.
"""

import dataclasses
import hashlib
import json

import pytest

from repro.scenarios.registry import all_scenarios, get_scenario
from repro.scenarios.spec import (
    ScenarioSpec,
    TrafficSpec,
    canonical_value,
)
from repro.telemetry import TelemetrySpec


def _spec(**overrides):
    base = dict(name="latency-lqd-burst", kind="latency",
                title="t", workload="mms")
    base.update(overrides)
    return ScenarioSpec(**base)


def test_equal_specs_hash_equal():
    assert _spec().spec_hash() == _spec().spec_hash()


def test_hash_is_sha256_hex():
    h = _spec().spec_hash()
    assert len(h) == 64
    assert set(h) <= set("0123456789abcdef")


def test_hash_matches_canonical_json_digest():
    spec = _spec()
    text = json.dumps(spec.canonical_dict(), sort_keys=True,
                      separators=(",", ":"))
    assert spec.spec_hash() == hashlib.sha256(
        text.encode("utf-8")).hexdigest()


@pytest.mark.parametrize("field,value", [
    ("name", "latency-red-burst"),
    ("kind", "overload"),
    ("title", "other"),
    ("workload", "ddr"),
    ("description", "changed"),
    ("engine", "reference"),
    ("seed", 7),
    ("budget", "fast"),
    ("traffic", TrafficSpec(pattern="sustained")),
    ("supports", frozenset({"seed"})),
])
def test_any_field_change_changes_the_hash(field, value):
    base = _spec()
    changed = dataclasses.replace(base, **{field: value})
    assert base.spec_hash() != changed.spec_hash(), field


def test_capability_change_changes_the_hash():
    """Growing an engine knob (supports + fastpath move together --
    the spec validates them as a pair) changes the hash."""
    base = _spec()
    changed = dataclasses.replace(base,
                                  supports=frozenset({"engine"}),
                                  fastpath="kernel")
    assert base.spec_hash() != changed.spec_hash()


def test_nested_spec_change_changes_the_hash():
    base = get_scenario("latency-lqd-burst").spec
    tuned = base.with_options(telemetry=TelemetrySpec(sample_every=8))
    assert base.spec_hash() != tuned.spec_hash()


@pytest.mark.parametrize("knob", [
    {"engine": "reference"}, {"seed": 99}, {"budget": "fast"},
])
def test_knob_overrides_change_the_hash(knob):
    base = get_scenario("latency-lqd-burst").spec
    assert base.spec_hash() != base.with_options(**knob).spec_hash()


def test_every_registered_scenario_hashes_distinct():
    hashes = {s.spec.spec_hash() for s in all_scenarios().values()}
    assert len(hashes) == len(all_scenarios())


def test_canonical_value_is_dict_order_insensitive():
    a = {"x": 1, "y": [1, 2], "z": {"p": True, "q": None}}
    b = {"z": {"q": None, "p": True}, "y": [1, 2], "x": 1}
    dump = lambda v: json.dumps(canonical_value(v), sort_keys=True)  # noqa: E731
    assert dump(a) == dump(b)


def test_canonical_value_sorts_sets_and_tags_dataclasses():
    assert canonical_value(frozenset({"b", "a"})) == ["a", "b"]
    doc = canonical_value(TrafficSpec())
    assert doc["__type__"] == "TrafficSpec"


def test_canonical_value_rejects_opaque_objects():
    with pytest.raises(TypeError, match="canonical JSON form"):
        canonical_value(object())


def test_hash_survives_registry_round_trip():
    """The registered spec and an identical with_options copy agree."""
    spec = get_scenario("table5").spec
    assert spec.spec_hash() == spec.with_options().spec_hash()
