"""Frame publication: line-atomic appends, torn-line tolerance,
replay-deterministic frame sequences, the probe-chain hook."""

import json
import os

import pytest

from repro.scenarios.runner import Runner
from repro.telemetry import MmsTelemetry, TelemetrySpec, publish
from repro.telemetry.publish import (
    FRAME_SCHEMA,
    FramePublisher,
    PublishingProbe,
    read_frames,
    validate_frame_dict,
)


@pytest.fixture(autouse=True)
def _no_leaked_publisher():
    yield
    publish.deactivate()


# ------------------------------------------------------- FramePublisher


def test_publisher_appends_one_line_per_frame(tmp_path):
    path = str(tmp_path / "frames.jsonl")
    with FramePublisher(path, every=1) as pub:
        pub.publish({"type": "progress", "commands": 1,
                     "telemetry": {}})
        pub.publish_done("table5", 2, None)
    lines = open(path, encoding="utf-8").read().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["schema"] == FRAME_SCHEMA
    assert [json.loads(li)["frame"] for li in lines] == [0, 1]


def test_publisher_truncates_on_open(tmp_path):
    """A retried worker starts its sequence over -- no stale frames
    from the crashed attempt survive in front of the new ones."""
    path = str(tmp_path / "frames.jsonl")
    with FramePublisher(path, every=1) as pub:
        pub.publish_done("table5", 1, None)
    with FramePublisher(path, every=1) as pub:
        pub.publish_done("table5", 2, None)
    frames = read_frames(path)
    assert len(frames) == 1
    assert frames[0]["commands"] == 2


def test_publisher_rejects_bad_stride(tmp_path):
    with pytest.raises(ValueError, match="every"):
        FramePublisher(str(tmp_path / "f.jsonl"), every=0)


def test_closed_publisher_refuses(tmp_path):
    pub = FramePublisher(str(tmp_path / "f.jsonl"))
    pub.close()
    with pytest.raises(ValueError, match="closed"):
        pub.publish({"type": "done", "scenario": "x", "commands": None,
                     "telemetry": None})
    pub.close()  # idempotent


# ----------------------------------------------------------- read_frames


def test_read_frames_drops_torn_final_line(tmp_path):
    path = str(tmp_path / "frames.jsonl")
    with FramePublisher(path, every=1) as pub:
        pub.publish_done("table5", 1, None)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": 1, "frame": 1, "type": "don')  # torn
    frames = read_frames(path)
    assert len(frames) == 1
    with pytest.raises(ValueError, match="invalid frame line"):
        read_frames(path, strict=True)


def test_read_frames_raises_on_mid_file_garbage(tmp_path):
    path = str(tmp_path / "frames.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("not json\n")
        fh.write('{"schema": 1, "frame": 1, "type": "done", '
                 '"scenario": "x", "commands": null, '
                 '"telemetry": null}\n')
    with pytest.raises(ValueError, match="frames.jsonl:1"):
        read_frames(path)


def test_validate_frame_dict():
    good = {"schema": FRAME_SCHEMA, "frame": 0, "type": "done",
            "scenario": "table5", "commands": None, "telemetry": None}
    assert validate_frame_dict(good) == []
    assert validate_frame_dict([]) == ["frame is not an object"]
    assert any("schema" in p for p in validate_frame_dict(
        {**good, "schema": 99}))
    assert any("type" in p for p in validate_frame_dict(
        {**good, "type": "bogus"}))
    progress = {"schema": FRAME_SCHEMA, "frame": 1, "type": "progress",
                "commands": 256, "telemetry": {}}
    assert validate_frame_dict(progress) == []
    assert any("telemetry" in p for p in validate_frame_dict(
        {**progress, "telemetry": 3}))


# -------------------------------------------------------- the probe hook


def test_probe_publishes_every_n_commands(tmp_path):
    path = str(tmp_path / "frames.jsonl")
    tele = MmsTelemetry(TelemetrySpec())
    with FramePublisher(path, every=2) as pub:
        probe = PublishingProbe(pub, tele)
        for i in range(5):
            probe.on_command(i * 10, None, 0, None, 1, 1)
    frames = read_frames(path, strict=True)
    assert [f["commands"] for f in frames] == [2, 4]
    assert all(f["type"] == "progress" for f in frames)
    assert all(validate_frame_dict(f) == [] for f in frames)


def test_inactive_publisher_publishes_nothing(tmp_path):
    """No activation -> the probe chain gets no publisher probe and a
    plain run writes no frames anywhere."""
    assert publish.active_probe(MmsTelemetry(TelemetrySpec())) is None
    assert publish.active_probe(None) is None


def test_activated_run_streams_frames_and_final_identity(tmp_path):
    path = str(tmp_path / "frames.jsonl")
    pub = FramePublisher(path, every=120)
    publish.activate(pub)
    try:
        result = Runner().run("latency-lqd-burst", budget="fast")
    finally:
        publish.deactivate()
    telemetry = result.metrics["telemetry"]
    pub.publish_done(result.scenario,
                     telemetry["counters"]["commands"], telemetry)
    pub.close()
    frames = read_frames(path, strict=True)
    assert len(frames) >= 3
    assert frames[-1]["type"] == "done"
    assert frames[-1]["telemetry"] == telemetry
    # progress frames are keyed by command count, strictly increasing
    commands = [f["commands"] for f in frames[:-1]]
    assert commands == sorted(commands)
    assert all(c % 120 == 0 for c in commands)


def test_frame_sequence_is_replay_deterministic(tmp_path):
    """Same spec, same publisher stride -> byte-identical progress
    frame sequence."""
    sequences = []
    for attempt in ("a", "b"):
        path = str(tmp_path / f"frames-{attempt}.jsonl")
        publish.activate(FramePublisher(path, every=150))
        try:
            Runner().run("latency-lqd-burst", budget="fast")
        finally:
            publish.deactivate()
        sequences.append(open(path, encoding="utf-8").read())
    assert sequences[0] == sequences[1]
    assert sequences[0]  # non-empty: frames were actually published


def test_publish_is_structurally_absent_from_plain_runs(tmp_path):
    """A plain CLI-style run must not import the serve daemon."""
    import subprocess
    import sys
    code = (
        "import sys\n"
        "from repro.scenarios.runner import Runner\n"
        "Runner().run('latency-lqd-burst', budget='fast')\n"
        "assert 'repro.serve' not in sys.modules\n"
        "assert 'asyncio' not in sys.modules\n"
        "print('structurally absent')\n"
    )
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.dirname(__file__))),
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert "structurally absent" in proc.stdout
