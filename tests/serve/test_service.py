"""The HTTP-independent serving core: submission, execution on the
fault-tolerant pool, cache identity, service metrics."""

import json

import pytest

from repro.monitor.metrics import parse_prometheus_text
from repro.scenarios.result import RunResult, validate_result_dict
from repro.serve.service import ScenarioService
from repro.telemetry.publish import read_frames


@pytest.fixture
def service(tmp_path):
    return ScenarioService(str(tmp_path / "spool"))


def test_submit_unknown_scenario_raises(service):
    with pytest.raises(KeyError, match="unknown scenario"):
        service.submit("no-such-scenario")


def test_submit_resolves_knobs_like_the_runner(service):
    record = service.submit("latency-lqd-burst", engine="reference",
                            seed=7, budget="fast")
    assert record.engine == "reference"
    assert record.seed == 7
    assert record.budget == "fast"
    assert record.state == "pending"
    assert not record.cached
    assert len(record.spec_hash) == 64
    assert len(record.cache_key) == 64


def test_execute_produces_valid_canonical_result(service):
    record = service.submit("latency-lqd-burst", budget="fast")
    done = service.execute(record.run_id)
    assert done.state == "done"
    assert done.result is not None
    assert validate_result_dict(done.result) == []
    assert RunResult.from_dict(done.result).scenario == "latency-lqd-burst"
    # canonical: wall clock scrubbed, no rusage in the document
    assert done.result["wall_clock_s"] == 0.0
    assert "resources" not in done.result["metrics"]
    # the worker streamed frames and ended with the done frame
    frames = read_frames(record.frames_path, strict=True)
    assert frames[-1]["type"] == "done"
    assert frames[-1]["telemetry"] == done.result["metrics"]["telemetry"]


def test_cache_hit_is_byte_identical(service):
    first = service.submit("latency-lqd-burst", budget="fast")
    service.execute(first.run_id)
    second = service.submit("latency-lqd-burst", budget="fast")
    assert second.cached
    assert second.state == "done"
    assert json.dumps(second.result, sort_keys=True) == json.dumps(
        first.result, sort_keys=True)
    # a cached run still streams a well-formed terminal frame
    frames = read_frames(second.frames_path, strict=True)
    assert [f["type"] for f in frames] == ["done"]
    assert frames[0]["telemetry"] == first.result["metrics"]["telemetry"]
    # execute on a cached record is a no-op
    assert service.execute(second.run_id).state == "done"


def test_cache_survives_service_restart(tmp_path):
    cache_dir = str(tmp_path / "cache")
    a = ScenarioService(str(tmp_path / "s1"), cache_dir)
    record = a.submit("table4", budget="fast")
    a.execute(record.run_id)
    b = ScenarioService(str(tmp_path / "s2"), cache_dir)
    again = b.submit("table4", budget="fast")
    assert again.cached
    assert again.result == a.get(record.run_id).result


def test_different_knobs_miss_the_cache(service):
    first = service.submit("latency-lqd-burst", budget="fast")
    service.execute(first.run_id)
    assert not service.submit("latency-lqd-burst", budget="fast",
                              seed=99).cached
    assert not service.submit("latency-lqd-burst", budget="fast",
                              engine="reference").cached


def test_injected_crash_exhausts_retries_and_fails(tmp_path):
    from repro.checkpoint.faults import write_plan
    plan = str(tmp_path / "faults.json")
    write_plan(plan, kill={"run-000001": 5})
    service = ScenarioService(str(tmp_path / "spool"), retries=0,
                              backoff_s=0.0, fault_plan=plan)
    record = service.submit("latency-lqd-burst", budget="fast")
    done = service.execute(record.run_id)
    assert done.state == "failed"
    assert done.error is not None
    assert done.result is None
    assert service.result(record.run_id) is None
    values = parse_prometheus_text(service.metrics_text())
    assert values["repro_serve_runs_failed_total"] == 1


def test_injected_crash_is_retried_to_success(tmp_path):
    """One kill + one retry: the pool's fault tolerance carries over
    to served runs, and the retried worker's frame file starts clean
    (truncate-on-open) so the stream still ends in one done frame."""
    from repro.checkpoint.faults import write_plan
    plan = str(tmp_path / "faults.json")
    write_plan(plan, kill={"run-000001": 1})
    service = ScenarioService(str(tmp_path / "spool"), retries=2,
                              backoff_s=0.0, fault_plan=plan)
    record = service.submit("latency-lqd-burst", budget="fast")
    done = service.execute(record.run_id)
    assert done.state == "done"
    frames = read_frames(record.frames_path, strict=True)
    assert [f["type"] for f in frames].count("done") == 1
    assert frames[-1]["telemetry"] == done.result["metrics"]["telemetry"]


def test_metrics_track_the_lifecycle(service):
    record = service.submit("latency-lqd-burst", budget="fast")
    service.execute(record.run_id)
    service.submit("latency-lqd-burst", budget="fast")
    service.record_request(now=1.0)
    service.record_request(now=2.0)
    service.record_stream_frames(3)
    values = parse_prometheus_text(service.metrics_text())
    assert values["repro_serve_runs_submitted_total"] == 2
    assert values["repro_serve_runs_done_total"] == 1
    assert values["repro_serve_runs_failed_total"] == 0
    assert values["repro_serve_cache_hits_total"] == 1
    assert values["repro_serve_cache_misses_total"] == 1
    assert values["repro_serve_requests_total"] == 2
    assert values["repro_serve_requests_per_second"] > 0
    assert values["repro_serve_stream_frames_total"] == 3
    assert values["repro_serve_runs_inflight"] == 0
    wall = values[
        "repro_serve_scenario_latency_lqd_burst_wall_seconds_total"]
    cpu = values[
        "repro_serve_scenario_latency_lqd_burst_cpu_seconds_total"]
    assert wall > 0
    assert cpu >= 0


def test_run_listing_and_lookup(service):
    record = service.submit("table4", budget="fast")
    summaries = service.runs()
    assert len(summaries) == 1
    assert summaries[0]["run_id"] == record.run_id
    assert summaries[0]["state"] == "pending"
    assert service.get(record.run_id) is record
    with pytest.raises(KeyError, match="unknown run"):
        service.get("run-999999")


def test_run_ids_are_sequential(service):
    first = service.submit("table4", budget="fast")
    second = service.submit("table3", budget="fast")
    assert first.run_id == "run-000001"
    assert second.run_id == "run-000002"
