"""The content-addressed result cache: key derivation, canonical
scrubbing, atomic persistence."""

import json
import os

import pytest

from repro.serve.cache import (
    ResultCache,
    cache_key,
    canonical_result_dict,
    code_version,
)


def test_code_version_is_stable_hex():
    first = code_version()
    assert first == code_version()
    assert len(first) == 64
    assert set(first) <= set("0123456789abcdef")


def test_cache_key_sensitive_to_every_component():
    base = dict(engine="fast", seed=2005, budget="full", version="v1")
    key = cache_key("h" * 64, **base)
    assert key != cache_key("a" * 64, **base)
    for field, value in [("engine", "reference"), ("seed", 7),
                         ("budget", "fast"), ("version", "v2")]:
        assert key != cache_key("h" * 64, **{**base, field: value}), field
    assert key == cache_key("h" * 64, **base)  # deterministic


def test_cache_key_defaults_to_live_code_version():
    explicit = cache_key("h" * 64, engine="fast", seed=1, budget="full",
                         version=code_version())
    implicit = cache_key("h" * 64, engine="fast", seed=1, budget="full")
    assert explicit == implicit


def test_canonical_result_dict_scrubs_nonreproducible_fields():
    doc = {"scenario": "table5", "wall_clock_s": 1.25,
           "metrics": {"gbps": 10.0,
                       "resources": {"cpu_s": 1.0}}}
    canon = canonical_result_dict(doc)
    assert canon["wall_clock_s"] == 0.0
    assert "resources" not in canon["metrics"]
    assert canon["metrics"]["gbps"] == 10.0
    # the input document is left untouched
    assert doc["wall_clock_s"] == 1.25
    assert "resources" in doc["metrics"]


def test_canonical_result_dict_is_idempotent():
    doc = {"scenario": "x", "wall_clock_s": 3.0, "metrics": {"m": 1}}
    once = canonical_result_dict(doc)
    assert canonical_result_dict(once) == once


def test_cache_round_trip(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    key = cache_key("b" * 64, engine="fast", seed=1, budget="fast",
                    version="v")
    assert cache.get(key) is None
    assert key not in cache
    doc = {"scenario": "table5", "wall_clock_s": 9.0, "metrics": {}}
    cache.put(key, doc)
    assert key in cache
    assert len(cache) == 1
    got = cache.get(key)
    assert got == canonical_result_dict(doc)
    # stored canonically: a re-put of the fetched doc is byte-stable
    cache.put(key, got)
    assert cache.get(key) == got


def test_cache_rejects_malformed_keys(tmp_path):
    cache = ResultCache(str(tmp_path))
    for bad in ("", "../escape", "UPPER", "zz/.."):
        with pytest.raises(ValueError, match="malformed cache key"):
            cache.get(bad)


def test_cache_entries_are_valid_json_files(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = cache_key("c" * 64, engine="n/a", seed=0, budget="full",
                    version="v")
    cache.put(key, {"scenario": "t", "wall_clock_s": 0.0,
                    "metrics": {}})
    path = os.path.join(str(tmp_path), key + ".json")
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as fh:
        assert json.load(fh)["scenario"] == "t"
