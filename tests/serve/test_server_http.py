"""The asyncio HTTP front end, driven over real sockets: routes,
chunked frame streaming (mid-run prefix consistency, final-frame
identity on both engines), cache round trips, metrics, shutdown."""

import json
import threading
import time

import pytest

from repro.monitor.metrics import parse_prometheus_text
from repro.serve import ScenarioService, ServeClient, ServeError, ServeServer
from repro.telemetry.publish import validate_frame_dict


def _start(service, jobs=2):
    """Run a ServeServer on an ephemeral port in a daemon thread;
    returns (server, client, thread)."""
    import asyncio

    server = ServeServer(service, port=0, jobs=jobs)
    ready = threading.Event()

    def _loop():
        async def _main():
            await server.start()
            ready.set()
            await server.serve_until_shutdown()
        asyncio.run(_main())

    thread = threading.Thread(target=_loop, daemon=True)
    thread.start()
    assert ready.wait(10), "server did not start"
    client = ServeClient("127.0.0.1", server.port, timeout_s=300.0)
    return server, client, thread


@pytest.fixture
def served(tmp_path):
    service = ScenarioService(str(tmp_path / "spool"))
    server, client, thread = _start(service)
    yield service, client
    try:
        client.shutdown()
    except (ServeError, OSError):
        pass
    thread.join(30)
    assert not thread.is_alive(), "server thread did not exit"


def test_healthz_and_404s(served):
    _service, client = served
    assert client.healthz() == {"ok": True}
    with pytest.raises(ServeError) as err:
        client.result("run-999999")
    assert err.value.status == 404
    status, _raw = client._request("GET", "/no/such/route")
    assert status == 404
    status, _raw = client._request("DELETE", "/runs")
    assert status == 404


def test_submit_rejects_bad_bodies(served):
    _service, client = served
    with pytest.raises(ServeError) as err:
        client.submit("no-such-scenario")
    assert err.value.status == 400
    status, raw = client._request("POST", "/runs", {"not": "a spec"})
    assert status == 400
    status, raw = client._request("POST", "/runs")
    assert status == 400
    assert b"scenario" in raw


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_final_streamed_frame_matches_result_telemetry(served, engine):
    """Satellite: on both engines, the last streamed frame's telemetry
    is byte-identical to the finished run's metrics["telemetry"]."""
    _service, client = served
    result, frames = client.run_and_wait("latency-lqd-burst",
                                         engine=engine, budget="fast")
    assert result["engine"] == engine
    assert frames, "stream delivered nothing"
    assert all(validate_frame_dict(f) == [] for f in frames)
    assert frames[-1]["type"] == "done"
    assert json.dumps(frames[-1]["telemetry"], sort_keys=True) == \
        json.dumps(result["metrics"]["telemetry"], sort_keys=True)
    # progress frames precede it in strictly increasing command order
    commands = [f["commands"] for f in frames[:-1]]
    assert commands == sorted(commands)


def test_cached_resubmit_is_byte_identical_over_http(served):
    _service, client = served
    first, _frames = client.run_and_wait("latency-lqd-burst",
                                         budget="fast")
    summary = client.submit("latency-lqd-burst", budget="fast")
    assert summary["cached"] is True
    assert summary["state"] == "done"
    second = client.result(summary["run_id"])
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True)
    # a cached run streams exactly the terminal frame
    frames = list(client.stream(summary["run_id"]))
    assert [f["type"] for f in frames] == ["done"]


def test_stream_mid_run_sees_consistent_prefix(served):
    """Satellite: a client connecting mid-run receives a consistent
    prefix -- complete frames only, in order, never a torn line.

    Driven deterministically: the run record exists but nothing
    executes; the test plays the worker, appending frames (including a
    deliberately torn tail) while a streaming client watches."""
    service, client = served
    record = service.submit("latency-lqd-burst", budget="fast")

    def frame_line(i, **extra):
        doc = {"schema": 1, "frame": i, "type": "progress",
               "commands": (i + 1) * 10, "time_ps": i,
               "telemetry": {"stub": i}}
        doc.update(extra)
        return (json.dumps(doc, separators=(",", ":")) + "\n").encode()

    received = []
    done = threading.Event()

    def consume():
        for doc in client.stream(record.run_id):
            received.append(doc)
        done.set()

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()

    with open(record.frames_path, "ab", buffering=0) as fh:
        fh.write(frame_line(0))
        fh.write(frame_line(1))
        torn = frame_line(2)
        fh.write(torn[:17])  # a torn, in-progress line
        deadline = time.monotonic() + 10
        while len(received) < 2 and time.monotonic() < deadline:
            time.sleep(0.02)
        # only the two complete frames crossed the wire
        assert [f["frame"] for f in received] == [0, 1]
        assert all(validate_frame_dict(f) == [] for f in received)
        # the torn line completes, then the terminal frame arrives
        fh.write(torn[17:])
        fh.write((json.dumps(
            {"schema": 1, "frame": 3, "type": "done",
             "scenario": record.scenario, "commands": 40,
             "telemetry": None}, separators=(",", ":")) + "\n").encode())

    assert done.wait(10), "stream did not terminate after done frame"
    consumer.join(5)
    assert [f["frame"] for f in received] == [0, 1, 2, 3]
    assert received[2]["commands"] == 30  # the once-torn line, intact
    assert received[-1]["type"] == "done"


def test_run_status_codes_follow_lifecycle(served):
    service, client = served
    record = service.submit("latency-lqd-burst", budget="fast")
    status, raw = client._request("GET", f"/runs/{record.run_id}")
    assert status == 202  # pending: summary, not a result
    assert json.loads(raw)["state"] == "pending"
    service.execute(record.run_id)
    status, raw = client._request("GET", f"/runs/{record.run_id}")
    assert status == 200
    assert json.loads(raw)["scenario"] == "latency-lqd-burst"


def test_failed_run_answers_500_and_stream_terminates(tmp_path):
    from repro.checkpoint.faults import write_plan
    plan = str(tmp_path / "faults.json")
    write_plan(plan, kill={"run-000001": 5})
    service = ScenarioService(str(tmp_path / "spool"), retries=0,
                              backoff_s=0.0, fault_plan=plan)
    _server, client, thread = _start(service)
    try:
        summary = client.submit("latency-lqd-burst", budget="fast")
        frames = list(client.stream(summary["run_id"]))  # waits it out
        assert all(f["type"] != "done" for f in frames)
        status, raw = client._request("GET", f"/runs/{summary['run_id']}")
        assert status == 500
        doc = json.loads(raw)
        assert doc["state"] == "failed"
        assert "error" in doc
        with pytest.raises(ServeError) as err:
            client.result(summary["run_id"])
        assert err.value.status == 500
    finally:
        client.shutdown()
        thread.join(30)


def test_metrics_endpoint_is_strictly_parseable(served):
    _service, client = served
    client.run_and_wait("latency-lqd-burst", budget="fast")
    client.submit("latency-lqd-burst", budget="fast")
    text = client.metrics_text()
    values = parse_prometheus_text(text)
    assert values["repro_serve_runs_done_total"] == 1
    assert values["repro_serve_cache_hits_total"] == 1
    assert values["repro_serve_requests_total"] >= 4
    assert values["repro_serve_requests_per_second"] > 0
    assert values["repro_serve_stream_frames_total"] >= 1
    assert values[
        "repro_serve_scenario_latency_lqd_burst_wall_seconds_total"] > 0


def test_run_listing_over_http(served):
    service, client = served
    service.submit("table4", budget="fast")
    service.submit("table3", budget="fast")
    runs = client.runs()
    assert [r["run_id"] for r in runs] == ["run-000001", "run-000002"]


def test_graceful_shutdown_drains_inflight_runs(tmp_path):
    """POST /shutdown while a run executes: the daemon finishes the
    run (its result lands in the cache) before the loop exits."""
    service = ScenarioService(str(tmp_path / "spool"))
    _server, client, thread = _start(service)
    summary = client.submit("latency-lqd-burst", budget="fast")
    client.shutdown()
    thread.join(60)
    assert not thread.is_alive()
    record = service.get(summary["run_id"])
    assert record.state == "done"
    assert record.cache_key in service.cache
