"""Engine equivalence: the calendar-queue kernel vs the heapq reference.

The calendar-queue :class:`Simulator` must be observationally identical
to :class:`HeapqSimulator` -- same resume order, same timestamps, same
values -- for any model.  Each scenario here is a generator-model factory
run once on each engine; the recorded traces must match exactly.
"""

import random

import pytest

from repro.mem import DdrController, MemOp
from repro.sim import Fifo, Resource, Simulator
from repro.sim.kernel import ENGINES, HeapqSimulator, make_simulator


def run_on(engine_cls, scenario):
    """Run ``scenario(sim, trace)`` processes on a fresh kernel; return
    the trace and final time."""
    sim = engine_cls()
    trace = []
    scenario(sim, trace)
    sim.run(until_ps=10_000_000)
    return trace, sim.now


def assert_engines_agree(scenario):
    ref_trace, ref_now = run_on(HeapqSimulator, scenario)
    cal_trace, cal_now = run_on(Simulator, scenario)
    assert cal_trace == ref_trace
    assert cal_now == ref_now
    assert ref_trace, "scenario produced an empty trace (vacuous test)"


def test_mixed_delays_and_same_time_ties():
    """Many processes with colliding timestamps: tie order must match."""
    def scenario(sim, trace):
        def ticker(tag, period, jitter, seed):
            rng = random.Random(seed)
            while sim.now < 50_000:
                trace.append((sim.now, tag))
                yield period + rng.randrange(jitter) * 10
        for i, (period, jitter) in enumerate(
                [(100, 3), (100, 3), (250, 1), (70, 5), (1000, 2), (100, 1)]):
            sim.spawn(ticker(f"t{i}", period, jitter, i), name=f"t{i}")
    assert_engines_agree(scenario)

def test_zero_delays_and_yield_none():
    def scenario(sim, trace):
        def churner(tag):
            for i in range(50):
                trace.append((sim.now, tag, i))
                yield 0 if i % 3 else None
                if i % 7 == 0:
                    yield 40
        for t in ("a", "b", "c"):
            sim.spawn(churner(t))
    assert_engines_agree(scenario)

def test_events_joins_and_fanout():
    def scenario(sim, trace):
        gate = sim.event("gate")

        def waiter(tag, extra):
            value = yield gate
            trace.append((sim.now, tag, value))
            yield extra
            trace.append((sim.now, tag, "done"))
            return tag

        def opener():
            yield 500
            gate.trigger("open")

        def joiner(procs):
            for p in procs:
                v = yield p
                trace.append((sim.now, "join", v))

        procs = [sim.spawn(waiter(f"w{i}", i * 30)) for i in range(5)]
        sim.spawn(opener())
        sim.spawn(joiner(procs))
    assert_engines_agree(scenario)

def test_fifo_backpressure_pipeline():
    def scenario(sim, trace):
        pipe = Fifo(sim, capacity=2, name="pipe")

        def producer():
            for i in range(40):
                yield from pipe.put(i)
                trace.append((sim.now, "put", i))

        def consumer():
            for _ in range(40):
                item = yield from pipe.get()
                trace.append((sim.now, "got", item))
                yield 70

        sim.spawn(producer())
        sim.spawn(consumer())
    assert_engines_agree(scenario)

def test_resource_contention():
    def scenario(sim, trace):
        bus = Resource(sim, slots=2, name="bus")

        def client(tag, hold, think):
            for _ in range(10):
                yield from bus.acquire()
                trace.append((sim.now, tag, "granted"))
                yield hold
                bus.release()
                yield think

        for i in range(5):
            sim.spawn(client(f"c{i}", 90 + 10 * i, 35 * i + 5))
    assert_engines_agree(scenario)

def test_ddr_controller_workload():
    """A real model block: queued DDR requests through the DES controller."""
    def scenario(sim, trace):
        ctrl = DdrController(sim, num_banks=4, reorder_window=4)
        rng = random.Random(7)

        def client(port):
            for i in range(30):
                op = MemOp.READ if (port + i) % 2 else MemOp.WRITE
                done = ctrl.submit(op, rng.randrange(4), tag=port * 100 + i)
                req = yield done
                trace.append((sim.now, port, req.tag, req.queue_wait_ps,
                              req.service_ps))
                yield rng.randrange(3) * 40_000

        for p in range(3):
            sim.spawn(client(p), name=f"cli{p}")
    assert_engines_agree(scenario)

def test_registry_and_factory():
    assert set(ENGINES) == {"calendar", "heapq"}
    assert type(make_simulator()) is Simulator
    assert type(make_simulator("heapq")) is HeapqSimulator
    with pytest.raises(ValueError):
        make_simulator("bogus")
