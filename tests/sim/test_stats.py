"""Tests for statistics collectors."""


import pytest
from hypothesis import given, strategies as st

from repro.sim import Counter, Histogram, LatencyRecorder, RunningStats, Simulator, TimeWeighted
from repro.sim.stats import weighted_mean


def test_counter_incr_and_reset():
    c = Counter("ops")
    c.incr()
    c.incr(4)
    assert c.value == 5
    c.reset()
    assert c.value == 0

def test_running_stats_known_values():
    rs = RunningStats()
    rs.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert rs.mean == pytest.approx(5.0)
    assert rs.stddev == pytest.approx(2.0)
    assert rs.minimum == 2.0
    assert rs.maximum == 9.0

def test_running_stats_empty():
    rs = RunningStats()
    assert rs.mean == 0.0
    assert rs.variance == 0.0

@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200))
def test_running_stats_matches_naive(xs):
    rs = RunningStats()
    rs.extend(xs)
    naive_mean = sum(xs) / len(xs)
    naive_var = sum((x - naive_mean) ** 2 for x in xs) / len(xs)
    assert rs.mean == pytest.approx(naive_mean, rel=1e-9, abs=1e-6)
    assert rs.variance == pytest.approx(naive_var, rel=1e-6, abs=1e-3)
    assert rs.minimum == min(xs)
    assert rs.maximum == max(xs)

def test_time_weighted_piecewise_constant():
    sim = Simulator()
    tw = TimeWeighted(sim, initial=0)

    def body():
        tw.record(10)     # 10 from t=0
        yield 100
        tw.record(20)     # 20 from t=100
        yield 300
        tw.record(0)      # 0 from t=400
        yield 100

    sim.spawn(body())
    sim.run()
    # (10*100 + 20*300 + 0*100) / 500 = 14
    assert tw.mean == pytest.approx(14.0)
    assert tw.current == 0

def test_time_weighted_no_elapsed_time():
    sim = Simulator()
    tw = TimeWeighted(sim, initial=5)
    assert tw.mean == 5

def test_histogram_bins_and_overflow():
    h = Histogram(bin_width=10, num_bins=5)
    for x in (0, 5, 15, 44, 49, 120):
        h.add(x)
    assert h.bins[0] == 2       # 0, 5
    assert h.bins[1] == 1       # 15
    assert h.bins[4] == 2       # 44, 49
    assert h.overflow == 1      # 120
    assert h.count == 6

def test_histogram_quantile_monotone():
    h = Histogram(bin_width=1, num_bins=100)
    for x in range(100):
        h.add(x)
    assert h.quantile(0.1) <= h.quantile(0.5) <= h.quantile(0.9)
    assert h.quantile(0.5) == pytest.approx(50, abs=2)

def test_histogram_bad_params():
    with pytest.raises(ValueError):
        Histogram(bin_width=0, num_bins=5)
    with pytest.raises(ValueError):
        Histogram(bin_width=1, num_bins=0)
    h = Histogram(bin_width=1, num_bins=5)
    with pytest.raises(ValueError):
        h.quantile(1.5)

def test_latency_recorder_basic():
    lr = LatencyRecorder("cmd")
    for v in (10.0, 20.0, 30.0):
        lr.record(v)
    assert lr.count == 3
    assert lr.mean == pytest.approx(20.0)
    assert lr.minimum == 10.0
    assert lr.maximum == 30.0

def test_latency_recorder_percentile_requires_samples():
    lr = LatencyRecorder("cmd", keep_samples=False)
    lr.record(1.0)
    with pytest.raises(RuntimeError):
        lr.percentile(50)

def test_latency_recorder_percentiles():
    lr = LatencyRecorder("cmd", keep_samples=True)
    for v in range(1, 101):
        lr.record(float(v))
    assert lr.percentile(0) == 1.0
    assert lr.percentile(100) == 100.0
    assert lr.percentile(50) == pytest.approx(50.5)

def test_weighted_mean():
    assert weighted_mean([(10.0, 1.0), (20.0, 3.0)]) == pytest.approx(17.5)
    assert weighted_mean([]) == 0.0
    assert weighted_mean([(5.0, 0.0)]) == 0.0

@given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                          st.floats(0.1, 10, allow_nan=False)),
                min_size=1, max_size=50))
def test_weighted_mean_bounded_by_extremes(pairs):
    m = weighted_mean(pairs)
    values = [v for v, _w in pairs]
    assert min(values) - 1e-9 <= m <= max(values) + 1e-9
