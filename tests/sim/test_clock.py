"""Tests for clock-domain conversion."""

import pytest

from repro.sim import Clock, NS


def test_paper_clock_domains_have_integer_periods():
    assert Clock(100).period_ps == 10_000
    assert Clock(125).period_ps == 8_000
    assert Clock(200).period_ps == 5_000

def test_cycles_to_ps_roundtrip():
    clk = Clock(125)
    assert clk.cycles_to_ps(10) == 80 * NS
    assert clk.ps_to_cycles(80 * NS) == 10
    assert clk.ps_to_whole_cycles(81 * NS) == 10

def test_fractional_cycles():
    clk = Clock(125)
    assert clk.cycles_to_ps(10.5) == 84 * NS  # the paper's 84 ns per MMS op

def test_next_edge_on_edge():
    clk = Clock(100)
    assert clk.next_edge(20_000) == 20_000

def test_next_edge_between_edges():
    clk = Clock(100)
    assert clk.next_edge(20_001) == 30_000
    assert clk.next_edge(29_999) == 30_000

def test_zero_frequency_rejected():
    with pytest.raises(ValueError):
        Clock(0)

def test_negative_frequency_rejected():
    with pytest.raises(ValueError):
        Clock(-5)

def test_non_integer_period_rejected():
    with pytest.raises(ValueError):
        Clock(3)  # 333333.33.. ps
