"""Tests for counted resources (bus/port arbitration)."""

import pytest

from repro.sim import Resource, Simulator


def test_try_acquire_and_release():
    sim = Simulator()
    bus = Resource(sim, slots=1)
    assert bus.try_acquire()
    assert not bus.try_acquire()
    bus.release()
    assert bus.try_acquire()

def test_release_without_acquire_raises():
    sim = Simulator()
    bus = Resource(sim)
    with pytest.raises(RuntimeError):
        bus.release()

def test_zero_slots_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, slots=0)

def test_blocking_acquire_fifo_order():
    sim = Simulator()
    bus = Resource(sim, slots=1, name="plb")
    order = []

    def master(tag, hold):
        yield from bus.acquire()
        order.append((tag, sim.now))
        yield hold
        bus.release()

    sim.spawn(master("m1", 100))
    sim.spawn(master("m2", 100))
    sim.spawn(master("m3", 100))
    sim.run()
    assert order == [("m1", 0), ("m2", 100), ("m3", 200)]

def test_multi_slot_concurrency():
    sim = Simulator()
    ports = Resource(sim, slots=2)
    order = []

    def user(tag):
        yield from ports.acquire()
        order.append((tag, sim.now))
        yield 50
        ports.release()

    for tag in ("a", "b", "c"):
        sim.spawn(user(tag))
    sim.run()
    assert order == [("a", 0), ("b", 0), ("c", 50)]

def test_wait_accounting():
    sim = Simulator()
    bus = Resource(sim, slots=1)

    def holder():
        yield from bus.acquire()
        yield 400
        bus.release()

    def waiter():
        yield from bus.acquire()
        bus.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert bus.total_acquisitions == 2
    assert bus.total_wait_ps == 400
    assert bus.mean_wait_ps == 200.0

def test_try_acquire_respects_waiting_queue():
    sim = Simulator()
    bus = Resource(sim, slots=1)
    events = []

    def holder():
        yield from bus.acquire()
        yield 100
        bus.release()

    def waiter():
        yield 10
        yield from bus.acquire()
        events.append(("waiter-got", sim.now))
        bus.release()

    def opportunist():
        yield 50
        # a queued waiter exists; try_acquire must not jump the queue
        events.append(("try", bus.try_acquire()))

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.spawn(opportunist())
    sim.run()
    assert ("try", False) in events
    assert ("waiter-got", 100) in events
