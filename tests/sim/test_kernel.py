"""Tests for the discrete-event kernel: processes, events, ordering."""

import pytest

from repro.sim import Simulator, SimulationError
from repro.sim.kernel import all_of, call_at


def test_single_process_advances_time():
    sim = Simulator()
    log = []

    def body():
        log.append(sim.now)
        yield 100
        log.append(sim.now)
        yield 250
        log.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert log == [0, 100, 350]

def test_process_return_value_via_join():
    sim = Simulator()
    results = []

    def worker():
        yield 10
        return 42

    def parent():
        proc = sim.spawn(worker(), name="worker")
        value = yield proc
        results.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(10, 42)]

def test_join_already_finished_process():
    sim = Simulator()
    seen = []

    def worker():
        yield 5
        return "done"

    def parent():
        proc = sim.spawn(worker())
        yield 50  # worker finishes long before we join
        value = yield proc
        seen.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert seen == [(50, "done")]

def test_event_wakes_all_waiters_with_value():
    sim = Simulator()
    ev = sim.event("go")
    woken = []

    def waiter(tag):
        value = yield ev
        woken.append((tag, sim.now, value))

    def trigger():
        yield 30
        ev.trigger("payload")

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.spawn(trigger())
    sim.run()
    assert woken == [("a", 30, "payload"), ("b", 30, "payload")]

def test_wait_on_triggered_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(7)
    seen = []

    def body():
        value = yield ev
        seen.append((sim.now, value))

    sim.spawn(body())
    sim.run()
    assert seen == [(0, 7)]

def test_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.trigger()
    with pytest.raises(SimulationError):
        ev.trigger()

def test_same_time_events_fire_in_spawn_order():
    sim = Simulator()
    order = []

    def body(tag):
        yield 100
        order.append(tag)

    for tag in ("first", "second", "third"):
        sim.spawn(body(tag))
    sim.run()
    assert order == ["first", "second", "third"]

def test_yield_none_reschedules_after_same_time_events():
    sim = Simulator()
    order = []

    def yielder():
        order.append("yielder-start")
        yield None
        order.append("yielder-resumed")

    def other():
        order.append("other")
        yield 0

    sim.spawn(yielder())
    sim.spawn(other())
    sim.run()
    assert order.index("other") < order.index("yielder-resumed")

def test_negative_delay_raises():
    sim = Simulator()

    def body():
        yield -5

    sim.spawn(body())
    with pytest.raises(SimulationError):
        sim.run()

def test_negative_delay_raises_under_run_until():
    """The until_ps bound must not mask the negative-delay guard."""
    sim = Simulator()

    def body():
        yield 10
        yield -1

    sim.spawn(body())
    with pytest.raises(SimulationError):
        sim.run(until_ps=1000)

def test_negative_delay_raises_mid_model():
    """A later negative delay fails even after valid same-time traffic."""
    sim = Simulator()

    def good():
        for _ in range(5):
            yield 0

    def bad():
        yield None
        yield -7

    sim.spawn(good())
    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run(until_ps=100)

def test_stale_entries_skipped_lazily():
    """Resumes for already-finished processes are dropped on pop (lazy
    deletion) and counted, never executed."""
    sim = Simulator()
    ran = []

    def body():
        ran.append(sim.now)
        yield 10

    proc = sim.spawn(body())
    sim.run()
    assert proc.done
    # schedule a resume for the dead process directly (kernel internals)
    sim._push(sim.now + 5, proc, None)
    assert sim.pending_events == 1
    sim.run()
    assert sim.stale_skips == 1
    assert sim.pending_events == 0
    assert ran == [0]

def test_pending_events_counter_tracks_schedule():
    sim = Simulator()

    def body():
        yield 10
        yield 20

    sim.spawn(body())
    assert sim.pending_events == 1
    sim.run(until_ps=10)
    assert sim.pending_events == 1  # the resume at t=30 is scheduled
    sim.run()
    assert sim.pending_events == 0

def test_bad_yield_type_raises():
    sim = Simulator()

    def body():
        yield "not a command"

    sim.spawn(body())
    with pytest.raises(SimulationError):
        sim.run()

def test_run_until_stops_clock_at_bound():
    sim = Simulator()

    def body():
        while True:
            yield 1000

    sim.spawn(body())
    sim.run(until_ps=5500)
    assert sim.now == 5500

def test_run_all_raises_if_not_quiescent():
    sim = Simulator()

    def forever():
        while True:
            yield 1_000_000

    sim.spawn(forever())
    with pytest.raises(SimulationError):
        sim.run_all(limit_ps=10_000_000)

def test_all_of_collects_values_in_order():
    sim = Simulator()
    evs = [sim.event(f"e{i}") for i in range(3)]
    seen = []

    def trigger(i, delay):
        yield delay
        evs[i].trigger(i * 10)

    def waiter():
        values = yield all_of(sim, evs)
        seen.append((sim.now, values))

    # trigger out of order: e2 at 10, e0 at 20, e1 at 30
    sim.spawn(trigger(2, 10))
    sim.spawn(trigger(0, 20))
    sim.spawn(trigger(1, 30))
    sim.spawn(waiter())
    sim.run()
    assert seen == [(30, [0, 10, 20])]

def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    seen = []

    def waiter():
        values = yield all_of(sim, [])
        seen.append(values)

    sim.spawn(waiter())
    sim.run()
    assert seen == [[]]

def test_call_at_runs_callback_at_time():
    sim = Simulator()
    hits = []
    call_at(sim, 123, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [123]

def test_call_at_past_raises():
    sim = Simulator()

    def body():
        yield 100
        call_at(sim, 50, lambda: None)

    sim.spawn(body())
    with pytest.raises(SimulationError):
        sim.run()

def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        trace = []

        def ping(tag, period):
            while sim.now < 1000:
                trace.append((sim.now, tag))
                yield period

        sim.spawn(ping("a", 70))
        sim.spawn(ping("b", 110))
        sim.run(until_ps=1000)
        return trace

    assert build() == build()
