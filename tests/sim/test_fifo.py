"""Tests for the bounded FIFO: ordering, blocking, backpressure."""

import pytest

from repro.sim import Fifo, FifoEmptyError, FifoFullError, Simulator


def test_try_put_try_get_fifo_order():
    sim = Simulator()
    f = Fifo(sim, capacity=4)
    for i in range(4):
        f.try_put(i)
    assert [f.try_get() for _ in range(4)] == [0, 1, 2, 3]

def test_try_put_full_raises():
    sim = Simulator()
    f = Fifo(sim, capacity=1)
    f.try_put("x")
    with pytest.raises(FifoFullError):
        f.try_put("y")

def test_try_get_empty_raises():
    sim = Simulator()
    f = Fifo(sim, capacity=1)
    with pytest.raises(FifoEmptyError):
        f.try_get()

def test_peek_does_not_remove():
    sim = Simulator()
    f = Fifo(sim)
    f.try_put("head")
    assert f.peek() == "head"
    assert len(f) == 1

def test_peek_empty_raises():
    sim = Simulator()
    f = Fifo(sim)
    with pytest.raises(FifoEmptyError):
        f.peek()

def test_capacity_zero_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Fifo(sim, capacity=0)

def test_blocking_get_waits_for_put():
    sim = Simulator()
    f = Fifo(sim, capacity=2)
    got = []

    def consumer():
        item = yield from f.get()
        got.append((sim.now, item))

    def producer():
        yield 500
        yield from f.put("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(500, "late")]

def test_blocking_put_backpressure():
    sim = Simulator()
    f = Fifo(sim, capacity=1)
    timeline = []

    def producer():
        yield from f.put("a")
        timeline.append(("put-a", sim.now))
        yield from f.put("b")  # blocks until consumer frees the slot
        timeline.append(("put-b", sim.now))

    def consumer():
        yield 300
        item = yield from f.get()
        timeline.append(("got-" + item, sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert ("put-a", 0) in timeline
    assert ("got-a", 300) in timeline
    assert ("put-b", 300) in timeline
    # 'b' is now queued
    assert f.try_get() == "b"

def test_multiple_blocked_getters_served_in_order():
    sim = Simulator()
    f = Fifo(sim)
    got = []

    def consumer(tag):
        item = yield from f.get()
        got.append((tag, item))

    def producer():
        yield 10
        f.try_put(1)
        yield 10
        f.try_put(2)

    sim.spawn(consumer("c1"))
    sim.spawn(consumer("c2"))
    sim.spawn(producer())
    sim.run()
    assert got == [("c1", 1), ("c2", 2)]

def test_multiple_blocked_putters_served_in_order():
    sim = Simulator()
    f = Fifo(sim, capacity=1)
    f.try_put("initial")

    def producer(item):
        yield from f.put(item)

    def consumer():
        yield 100
        assert f.try_get() == "initial"
        yield 100
        assert f.try_get() == "p1"
        yield 100
        assert f.try_get() == "p2"

    sim.spawn(producer("p1"))
    sim.spawn(producer("p2"))
    sim.spawn(consumer())
    sim.run()
    assert len(f) == 0

def test_put_get_counters():
    sim = Simulator()
    f = Fifo(sim, capacity=8)
    for i in range(5):
        f.try_put(i)
    f.try_get()
    f.try_get()
    assert f.total_put == 5
    assert f.total_got == 2

def test_occupancy_time_weighted_mean():
    sim = Simulator()
    f = Fifo(sim, capacity=4)

    def body():
        f.try_put("a")       # occupancy 1 from t=0
        yield 100
        f.try_put("b")       # occupancy 2 from t=100
        yield 100
        f.try_get()          # occupancy 1 from t=200
        f.try_get()          # occupancy 0 from t=200
        yield 100

    sim.spawn(body())
    sim.run()
    # mean = (1*100 + 2*100 + 0*100)/300 = 1.0
    assert f.occupancy.mean == pytest.approx(1.0)

def test_unbounded_fifo_never_full():
    sim = Simulator()
    f = Fifo(sim, capacity=None)
    for i in range(10_000):
        f.try_put(i)
    assert not f.is_full
    assert len(f) == 10_000
