"""Tests for the per-packet program derivation."""


from repro.ixp import IxpParams, build_queue_program
from repro.ixp.program import derive_queue_op_access_count


def test_access_count_derived_from_structure_is_14():
    """pop(3) + link(4) + unlink(3) + push(4) on the Section 5.2
    structure with anchors in memory."""
    assert derive_queue_op_access_count() == 14

def test_unloaded_cycles_match_table2_one_engine_column():
    """209 / 513 / 3333 cycles per packet = 956 / 390 / 60 Kpps at
    200 MHz (Table 2, 1-microengine column)."""
    p = IxpParams()
    assert build_queue_program(16, p).unloaded_cycles(p) == 209
    assert build_queue_program(128, p).unloaded_cycles(p) == 513
    assert build_queue_program(1024, p).unloaded_cycles(p) == 3333

def test_scan_words_scale_with_queues():
    assert build_queue_program(16).scan_words == 1
    assert build_queue_program(128).scan_words == 4
    assert build_queue_program(1024).scan_words == 32
    assert build_queue_program(33).scan_words == 2

def test_memory_accesses_same_across_regimes():
    """The data structure does the same pointer work regardless of where
    it lives; only the unit cost changes."""
    a = build_queue_program(16)
    b = build_queue_program(1024)
    assert a.memory_accesses == b.memory_accesses == 14

def test_unloaded_cycles_monotone_in_queue_count():
    p = IxpParams()
    cycles = [build_queue_program(q, p).unloaded_cycles(p)
              for q in (4, 16, 64, 128, 512, 1024, 4096)]
    assert cycles == sorted(cycles)
