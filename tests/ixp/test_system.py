"""Tests for the whole-IXP simulation (Table 2 reproduction)."""

import pytest

from repro.ixp import IxpSystem, simulate_ixp

# Table 2 of the paper: maximum serviced rate (Kpps).
PAPER_TABLE2 = {
    (16, 1): 956,
    (16, 6): 5600,
    (128, 1): 390,
    (128, 6): 2300,
    (1024, 1): 60,
    (1024, 6): 300,
}

def test_one_engine_rates_match_paper():
    for (queues, engines), want in PAPER_TABLE2.items():
        if engines != 1:
            continue
        got = simulate_ixp(queues, engines).kpps
        assert got == pytest.approx(want, rel=0.05), (queues, engines)

def test_six_engine_rates_match_paper():
    for (queues, engines), want in PAPER_TABLE2.items():
        if engines != 6:
            continue
        got = simulate_ixp(queues, engines).kpps
        assert got == pytest.approx(want, rel=0.10), (queues, engines)

def test_paper_conclusion_1k_queues_below_150mbps():
    """Section 4: 'the whole of the IXP cannot support more than 150Mbps
    ... even if only 1K queues are needed'."""
    from repro.net import pps_to_gbps
    r = simulate_ixp(1024, 6)
    assert pps_to_gbps(r.pps, 64) < 0.170

def test_scaling_sublinear_when_controller_saturates():
    one = simulate_ixp(1024, 1).pps
    six = simulate_ixp(1024, 6).pps
    assert six < 6 * one * 0.95  # visibly below linear
    assert six > 3 * one         # but still far better than one engine

def test_scaling_near_linear_in_scratch_regime():
    one = simulate_ixp(16, 1).pps
    six = simulate_ixp(16, 6).pps
    assert six > 5.5 * one

def test_utilization_grows_with_engines():
    u1 = simulate_ixp(128, 1).unit_utilization
    u6 = simulate_ixp(128, 6).unit_utilization
    assert u6 > u1 * 3

def test_more_queues_lower_rate():
    rates = [simulate_ixp(q, 1).pps for q in (16, 128, 1024)]
    assert rates == sorted(rates, reverse=True)

def test_multithreading_does_not_help_sram_regime():
    """The paper's [10]-based claim: context-switch overhead eats the
    latency-hiding benefit for queue management."""
    plain = simulate_ixp(128, 6, multithreading=False).pps
    threaded = simulate_ixp(128, 6, multithreading=True).pps
    assert threaded < plain * 1.10

def test_engine_count_validation():
    with pytest.raises(ValueError):
        IxpSystem(16, 0)
    with pytest.raises(ValueError):
        IxpSystem(16, 7)

def test_determinism():
    a = simulate_ixp(128, 6)
    b = simulate_ixp(128, 6)
    assert a.packets == b.packets
    assert a.duration_ps == b.duration_ps

def test_result_accessors():
    r = simulate_ixp(16, 1)
    assert r.kpps == pytest.approx(r.pps / 1e3)
    assert r.mpps == pytest.approx(r.pps / 1e6)
    assert r.packets > 0

def test_engine_knob_trace_identical():
    """calendar (fast) vs heapq (reference) kernels: same Table 2 cell."""
    fast = simulate_ixp(128, 6, engine="fast")
    ref = simulate_ixp(128, 6, engine="reference")
    assert fast.engine == "fast" and ref.engine == "reference"
    assert fast.packets == ref.packets
    assert fast.duration_ps == ref.duration_ps

def test_engine_knob_rejects_unknown():
    import pytest as _pytest
    with _pytest.raises(ValueError):
        simulate_ixp(16, 1, engine="turbo")
