"""Tests for IXP1200 parameters and regime selection."""

import pytest

from repro.ixp import IxpParams, regime_for_queues
from repro.ixp.params import MemoryCosts, SCRATCH_MAX_QUEUES, SRAM_MAX_QUEUES


def test_table2_queue_counts_map_to_expected_units():
    assert regime_for_queues(16).unit == "scratch"
    assert regime_for_queues(128).unit == "sram"
    assert regime_for_queues(1024).unit == "sdram"

def test_regime_boundaries():
    assert regime_for_queues(SCRATCH_MAX_QUEUES).unit == "scratch"
    assert regime_for_queues(SCRATCH_MAX_QUEUES + 1).unit == "sram"
    assert regime_for_queues(SRAM_MAX_QUEUES).unit == "sram"
    assert regime_for_queues(SRAM_MAX_QUEUES + 1).unit == "sdram"

def test_regime_validation():
    with pytest.raises(ValueError):
        regime_for_queues(0)

def test_blocking_cycles_is_sum():
    c = MemoryCosts(service_cycles=4, engine_overhead_cycles=21)
    assert c.blocking_cycles == 25

def test_costs_for_unknown_unit_raises():
    with pytest.raises(ValueError):
        IxpParams().costs_for("flash")

def test_paper_clock():
    assert IxpParams().clock_mhz == 200
    assert IxpParams().num_microengines == 6

def test_memory_hierarchy_ordering():
    """Deeper levels must cost strictly more."""
    p = IxpParams()
    assert (p.scratch.blocking_cycles
            < p.sram.blocking_cycles
            < p.sdram.blocking_cycles)
