"""R3 fixtures: direct json.dump, dumps-to-write, the atomic sanctuary."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source
from repro.lint.rules.atomic_json import AtomicJsonRule

RULE = [AtomicJsonRule()]
PATH = "repro/fixture/persist.py"


def lint(src, config, path=PATH):
    return lint_source(textwrap.dedent(src), path, config, RULE)


def test_direct_json_dump_flagged(config):
    findings = lint(
        """
        import json

        def save(doc, fh):
            json.dump(doc, fh)
        """, config)
    assert [f.symbol for f in findings] == ["json.dump"]
    assert "atomic" in findings[0].message


def test_dumps_to_write_handle_flagged(config):
    findings = lint(
        """
        import json

        def save(doc, path):
            with open(path, "w") as fh:
                fh.write(json.dumps(doc, indent=2) + "\\n")
        """, config)
    assert [f.symbol for f in findings] == ["fh.write(json.dumps)"]


def test_read_mode_handle_clean(config):
    findings = lint(
        """
        import json

        def load(path):
            with open(path) as fh:
                return json.load(fh)

        def echo(doc, path):
            with open(path, "r") as fh:
                pass
            return json.dumps(doc)
        """, config)
    assert findings == []


def test_atomic_helper_usage_clean(config):
    findings = lint(
        """
        import json
        from repro.checkpoint.atomic import write_text_atomic

        def save(doc, path):
            write_text_atomic(path, json.dumps(doc, indent=2) + "\\n")
        """, config)
    assert findings == []


def test_sanctuary_module_exempt(config):
    src = """
        import json

        def persist(doc, fh):
            json.dump(doc, fh)
        """
    assert lint(src, config, path="repro/checkpoint/atomic.py") == []
    assert len(lint(src, config)) == 1


def test_non_json_write_clean(config):
    findings = lint(
        """
        def save(text, path):
            with open(path, "w") as fh:
                fh.write(text)
        """, config)
    assert findings == []
