"""R4 fixtures: unpaired snapshot halves, both pair families."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source
from repro.lint.rules.serialization import SerializationPairRule

RULE = [SerializationPairRule()]
PATH = "repro/fixture/state.py"


def lint(src, config, path=PATH):
    return lint_source(textwrap.dedent(src), path, config, RULE)


def test_state_dict_without_load_state_flagged(config):
    findings = lint(
        """
        class Machine:
            def state_dict(self):
                return {}
        """, config)
    assert [f.symbol for f in findings] == ["Machine.load_state"]
    assert "resume" in findings[0].message


def test_load_state_without_state_dict_flagged(config):
    findings = lint(
        """
        class Machine:
            def load_state(self, state):
                pass
        """, config)
    assert [f.symbol for f in findings] == ["Machine.state_dict"]


def test_to_json_without_from_json_flagged(config):
    findings = lint(
        """
        class Doc:
            def to_json(self):
                return "{}"
        """, config)
    assert [f.symbol for f in findings] == ["Doc.from_json"]


def test_paired_classes_clean(config):
    findings = lint(
        """
        class Machine:
            def state_dict(self):
                return {}

            def load_state(self, state):
                pass

        class Doc:
            def to_json(self):
                return "{}"

            @classmethod
            def from_json(cls, text):
                return cls()
        """, config)
    assert findings == []


def test_both_pairs_checked_independently(config):
    findings = lint(
        """
        class Everything:
            def state_dict(self):
                return {}

            def to_json(self):
                return "{}"
        """, config)
    assert sorted(f.symbol for f in findings) == [
        "Everything.from_json", "Everything.load_state"]


def test_unrelated_class_clean(config):
    findings = lint(
        """
        class Plain:
            def run(self):
                pass
        """, config)
    assert findings == []
