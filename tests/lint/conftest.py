"""Shared fixtures: the repo's real lint config and a snippet linter."""

from __future__ import annotations

import pathlib

import pytest

from repro.lint import LintConfig, load_config

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
CONFIG_PATH = REPO_ROOT / "repro-lint.toml"


@pytest.fixture(scope="session")
def config() -> LintConfig:
    """The committed repro-lint.toml, as the rules see it."""
    return load_config(str(CONFIG_PATH))
