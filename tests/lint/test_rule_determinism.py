"""R1 fixtures: clock/entropy bans, seeded-Random sanction, allowlist."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source
from repro.lint.rules.determinism import DeterminismRule

RULE = [DeterminismRule()]
PATH = "repro/fixture/mod.py"  # not in any config allowlist


def lint(src, config, path=PATH):
    return lint_source(textwrap.dedent(src), path, config, RULE)


def test_wall_clock_call_flagged(config):
    findings = lint(
        """
        import time

        def stamp():
            return time.time()
        """, config)
    assert [f.symbol for f in findings] == ["time.time"]
    assert findings[0].rule == "R1"
    assert findings[0].line == 5


def test_aliased_import_resolved(config):
    findings = lint(
        """
        import time as _t

        def stamp():
            return _t.perf_counter_ns()
        """, config)
    assert [f.symbol for f in findings] == ["time.perf_counter_ns"]


def test_from_import_of_banned_callable_flagged(config):
    findings = lint(
        """
        from time import time

        def stamp():
            return time()
        """, config)
    # flagged at the import site and at the call site
    assert [f.symbol for f in findings] == ["time.time", "time.time"]
    assert findings[0].line == 2


def test_datetime_now_flagged_via_both_import_styles(config):
    findings = lint(
        """
        import datetime
        from datetime import datetime as dt

        a = datetime.datetime.now()
        b = dt.now()
        """, config)
    assert [f.symbol for f in findings] == [
        "datetime.datetime.now", "datetime.datetime.now"]


def test_unseeded_module_random_flagged(config):
    findings = lint(
        """
        import random

        def draw():
            return random.randint(0, 7)
        """, config)
    assert [f.symbol for f in findings] == ["random.randint"]
    assert "seeded" in findings[0].message


def test_os_urandom_and_secrets_flagged(config):
    findings = lint(
        """
        import os
        import secrets

        def token():
            return os.urandom(8) + secrets.token_bytes(8)
        """, config)
    assert [f.symbol for f in findings] == [
        "secrets", "os.urandom", "secrets.token_bytes"]


def test_seeded_random_instance_clean(config):
    findings = lint(
        """
        import random

        def make_rng(seed):
            rng = random.Random(seed)
            return rng.randint(0, 7)
        """, config)
    assert findings == []


def test_unseeded_random_instance_flagged(config):
    findings = lint(
        """
        from random import Random

        def make_rng():
            return Random()
        """, config)
    assert [f.symbol for f in findings] == ["random.Random"]
    assert "seed" in findings[0].message


def test_allowlisted_file_and_call_clean(config):
    src = """
        import time

        def wall():
            return time.perf_counter()
        """
    # runner.py is allowlisted for exactly this call ...
    assert lint(src, config, path="repro/scenarios/runner.py") == []
    # ... everywhere else it is a violation
    assert len(lint(src, config)) == 1


def test_allowlist_is_per_call_not_per_file(config):
    findings = lint(
        """
        import time

        def wall():
            return time.time()
        """, config, path="repro/scenarios/runner.py")
    assert [f.symbol for f in findings] == ["time.time"]


def test_unrelated_attribute_chains_clean(config):
    findings = lint(
        """
        class Clock:
            def time(self):
                return 0

        def read(clock):
            return clock.time() + Clock().time()
        """, config)
    assert findings == []
