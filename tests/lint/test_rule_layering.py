"""R2 fixtures: the layer DAG, the Probe crossing, relative imports."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source
from repro.lint.rules.layering import LayeringRule

RULE = [LayeringRule()]


def lint(src, path, config):
    return lint_source(textwrap.dedent(src), path, config, RULE)


def test_hot_importing_checkpoint_flagged(config):
    findings = lint(
        """
        from repro.checkpoint import Checkpoint
        """, "repro/engines/stream.py", config)
    assert len(findings) == 1
    assert findings[0].symbol == "repro.checkpoint"
    assert "'hot'" in findings[0].message and "'slow'" in findings[0].message


def test_hot_importing_scenarios_and_collector_flagged(config):
    findings = lint(
        """
        import repro.scenarios.spec
        from repro.telemetry.collector import MmsTelemetry
        """, "repro/sim/kernel.py", config)
    assert [f.symbol for f in findings] == [
        "repro.scenarios.spec", "repro.telemetry.collector"]


def test_probe_module_is_the_sanctioned_crossing(config):
    findings = lint(
        """
        from repro.telemetry.probe import Probe, TelemetrySpec
        from repro.telemetry.histogram import Log2Histogram
        """, "repro/core/mms.py", config)
    assert findings == []


def test_package_level_telemetry_import_still_flagged_from_hot(config):
    # `from repro.telemetry import probe` executes the package __init__
    # (which pulls in the collector) -- only the direct module path is
    # sanctioned.
    findings = lint(
        """
        from repro.telemetry import probe
        """, "repro/core/mms.py", config)
    assert [f.symbol for f in findings] == ["repro.telemetry"]


def test_relative_import_resolved_against_module(config):
    # from within repro/queueing/foo.py, `from ..checkpoint import x`
    # resolves to repro.checkpoint
    findings = lint(
        """
        from ..checkpoint import atomic
        """, "repro/queueing/foo.py", config)
    assert [f.symbol for f in findings] == ["repro.checkpoint"]


def test_intra_hot_imports_clean(config):
    findings = lint(
        """
        from repro.queueing.freelist import FreeList
        from repro.mem.timing import DdrTiming
        from .fifo import Fifo
        """, "repro/sim/resource.py", config)
    assert findings == []


def test_slow_layer_may_import_everything(config):
    findings = lint(
        """
        from repro.engines.stream import StreamMms
        from repro.telemetry.collector import MmsTelemetry
        from repro.scenarios.spec import ScenarioSpec
        import repro.checkpoint
        """, "repro/analysis/cli.py", config)
    assert findings == []


def test_platform_layer_may_not_import_slow(config):
    findings = lint(
        """
        from repro.scenarios import registry
        """, "repro/apps/ip_router.py", config)
    assert len(findings) == 1
    assert "'platform'" in findings[0].message


def test_unlayered_module_unconstrained(config):
    findings = lint(
        """
        import repro.checkpoint
        """, "scripts/tooling.py", config)
    assert findings == []


def test_stdlib_imports_never_flagged(config):
    findings = lint(
        """
        import heapq
        from collections import deque
        """, "repro/sim/kernel.py", config)
    assert findings == []
