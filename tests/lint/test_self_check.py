"""The gate itself: the live src/repro tree is clean, with no baseline.

This is the tier-1 teeth of the static contracts -- a PR that
introduces a clock call on a hot path, a checkpoint import in an
engine, a bare json.dump or an unpaired state_dict fails here, before
any identity suite has to catch it dynamically.
"""

from __future__ import annotations

from repro.lint import lint_paths, select_rules
from repro.lint.config import Layer
from tests.lint.conftest import CONFIG_PATH, REPO_ROOT


def test_live_tree_is_clean(config):
    findings, files = lint_paths(config)
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, (
        f"src/repro violates its static contracts "
        f"(fix them or -- for a sanctioned exception -- extend "
        f"repro-lint.toml):\n{rendered}")
    # the whole package was actually checked, not a subset
    assert files > 100


def test_committed_config_parses_and_names_all_rules(config):
    assert config.source == str(CONFIG_PATH)
    assert {r.code for r in select_rules()} == {"R1", "R2", "R3", "R4", "R5"}
    # every rule has non-trivial config behind it
    assert config.banned_calls and config.seeded_factories
    assert config.layers and config.serialization_pairs
    assert config.atomic_allowed_in and config.spec_modules
    assert config.spec_class_suffixes


def test_layer_dag_covers_every_package(config):
    """A new top-level package must be placed in the DAG deliberately."""
    packages = sorted(
        p.name for p in (REPO_ROOT / "src" / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").exists())
    unplaced = [pkg for pkg in packages
                if config.layer_of(f"repro.{pkg}") is None]
    assert not unplaced, (
        f"packages missing from the repro-lint.toml layer DAG: {unplaced}")


def test_layer_dag_is_acyclic_beyond_self(config):
    """may_import edges (minus self-loops) form a DAG -- 'layering'
    would be meaningless with cycles."""
    edges = {layer.name: set(layer.may_import) - {layer.name}
             for layer in config.layers}
    seen, done = set(), set()

    def visit(name: str) -> None:
        assert name not in seen, f"layer cycle through {name!r}"
        if name in done:
            return
        seen.add(name)
        for dep in edges.get(name, ()):
            visit(dep)
        seen.discard(name)
        done.add(name)

    for name in edges:
        visit(name)


def test_longest_prefix_wins_for_probe_crossing(config):
    probe = config.layer_of("repro.telemetry.probe")
    collector = config.layer_of("repro.telemetry.collector")
    assert isinstance(probe, Layer) and probe.name == "probe"
    assert isinstance(collector, Layer) and collector.name == "slow"


def test_hot_layer_cannot_reach_slow(config):
    hot = config.layer_of("repro.sim.kernel")
    assert hot is not None and hot.name == "hot"
    assert "slow" not in hot.may_import
    assert "platform" not in hot.may_import


def test_determinism_allowlist_entries_point_at_real_files(config):
    for relpath in config.determinism_allow:
        assert (REPO_ROOT / "src" / relpath).is_file(), (
            f"[rules.determinism.allow] names a missing file: {relpath}")


def test_atomic_sanctuary_is_exactly_checkpoint_atomic(config):
    assert list(config.atomic_allowed_in) == ["repro/checkpoint/atomic.py"]
    assert (REPO_ROOT / "src" / "repro" / "checkpoint" / "atomic.py").is_file()


def test_spec_modules_exist(config):
    for relpath in config.spec_modules:
        assert (REPO_ROOT / "src" / relpath).is_file()
