"""CLI contract: exit codes, --json schema, --baseline, -m parity."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint import validate_report_dict
from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main
from tests.lint.conftest import REPO_ROOT

MINI_CONFIG = """
[lint]
root = "."
package = "pkg"

[rules.determinism]
banned = ["time.time"]
seeded_factories = ["random.Random"]

[rules.atomic-json]
allowed_in = []

[rules.serialization]
pairs = [["state_dict", "load_state"]]
allow = []

[rules.frozen-spec]
modules = []
class_suffixes = ["Spec"]
"""

CLEAN_SRC = "X = 1\n"
DIRTY_SRC = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """)


@pytest.fixture
def project(tmp_path):
    """A miniature lintable project with its own config."""
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").write_text(CLEAN_SRC)
    config = tmp_path / "repro-lint.toml"
    config.write_text(MINI_CONFIG)
    return tmp_path


def write_module(project, name, source):
    (project / "pkg" / name).write_text(source)


def test_clean_tree_exits_zero(project, capsys):
    assert main(["--config", str(project / "repro-lint.toml")]) == EXIT_CLEAN
    assert "clean: 0 findings" in capsys.readouterr().out


def test_findings_exit_one_with_location_lines(project, capsys):
    write_module(project, "dirty.py", DIRTY_SRC)
    assert main(["--config", str(project / "repro-lint.toml")]) \
        == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "pkg/dirty.py:5:" in out
    assert "R1[determinism]" in out


def test_json_report_schema_and_atomic_file(project, capsys):
    write_module(project, "dirty.py", DIRTY_SRC)
    out_file = project / "report.json"
    code = main(["--config", str(project / "repro-lint.toml"),
                 "--json", str(out_file), "--quiet"])
    assert code == EXIT_FINDINGS
    doc = json.loads(out_file.read_text())
    assert validate_report_dict(doc) == []
    assert doc["summary"]["findings"] == 1
    assert doc["summary"]["by_rule"]["R1"] == 1
    assert doc["findings"][0]["path"] == "pkg/dirty.py"
    # no stray temp files from the atomic write
    assert [p.name for p in project.glob("*.tmp")] == []


def test_json_to_stdout(project, capsys):
    code = main(["--config", str(project / "repro-lint.toml"), "--json"])
    assert code == EXIT_CLEAN
    doc = json.loads(capsys.readouterr().out)
    assert validate_report_dict(doc) == []
    assert doc["summary"]["findings"] == 0


def test_baseline_round_trip(project, capsys):
    write_module(project, "dirty.py", DIRTY_SRC)
    config = ["--config", str(project / "repro-lint.toml")]
    baseline = project / "lint-baseline.json"

    assert main(config + ["--write-baseline", str(baseline)]) == EXIT_CLEAN
    doc = json.loads(baseline.read_text())
    assert doc["version"] == 1 and len(doc["suppress"]) == 1

    # suppressed findings gate nothing but are still reported as such
    assert main(config + ["--baseline", str(baseline)]) == EXIT_CLEAN
    assert "1 suppressed by baseline" in capsys.readouterr().out

    # a *new* violation still fails against the old baseline
    write_module(project, "worse.py", DIRTY_SRC)
    assert main(config + ["--baseline", str(baseline)]) == EXIT_FINDINGS


def test_rule_selection(project, capsys):
    write_module(project, "dirty.py", DIRTY_SRC)
    config = ["--config", str(project / "repro-lint.toml")]
    # R1 disabled -> the clock call is invisible
    assert main(config + ["--rules", "R3,R4"]) == EXIT_CLEAN
    assert main(config + ["--rules", "determinism"]) == EXIT_FINDINGS


def test_unknown_rule_is_usage_error(project, capsys):
    assert main(["--rules", "R99"]) == EXIT_ERROR
    assert "unknown rule" in capsys.readouterr().err


def test_missing_config_is_usage_error(tmp_path, capsys):
    assert main(["--config", str(tmp_path / "nope.toml")]) == EXIT_ERROR
    assert "repro-lint:" in capsys.readouterr().err


def test_syntax_error_is_usage_error(project, capsys):
    write_module(project, "broken.py", "def f(:\n")
    assert main(["--config", str(project / "repro-lint.toml")]) == EXIT_ERROR


def test_explicit_paths_scope_the_run(project):
    write_module(project, "dirty.py", DIRTY_SRC)
    config = ["--config", str(project / "repro-lint.toml")]
    assert main(config + ["pkg/__init__.py"]) == EXIT_CLEAN
    assert main(config + ["pkg/dirty.py"]) == EXIT_FINDINGS


def test_list_rules_names_all_five(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for code in ("R1", "R2", "R3", "R4", "R5"):
        assert code in out


def test_python_dash_m_matches_cli(project):
    """`python -m repro.lint` is the same program as the console script."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint",
         "--config", str(project / "repro-lint.toml"), "--json"],
        capture_output=True, text=True, env=env, cwd=str(project))
    assert proc.returncode == EXIT_CLEAN, proc.stderr
    doc = json.loads(proc.stdout)
    assert validate_report_dict(doc) == []
