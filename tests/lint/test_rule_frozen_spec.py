"""R5 fixtures: frozen-by-module, frozen-by-name, decorator forms."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source
from repro.lint.rules.frozen_spec import FrozenSpecRule

RULE = [FrozenSpecRule()]


def lint(src, path, config):
    return lint_source(textwrap.dedent(src), path, config, RULE)


def test_unfrozen_dataclass_in_spec_module_flagged(config):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Anything:
            x: int = 0
        """, "repro/scenarios/spec.py", config)
    assert [f.symbol for f in findings] == ["Anything"]
    assert "frozen=True" in findings[0].message


def test_unfrozen_spec_named_dataclass_flagged_anywhere(config):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class PortSpec:
            name: str = ""
        """, "repro/mem/sched.py", config)
    assert [f.symbol for f in findings] == ["PortSpec"]


def test_frozen_forms_clean(config):
    findings = lint(
        """
        import dataclasses
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class TrafficSpec:
            x: int = 0

        @dataclasses.dataclass(frozen=True, slots=True)
        class MemorySpec:
            y: int = 0
        """, "repro/scenarios/spec.py", config)
    assert findings == []


def test_frozen_false_literal_flagged(config):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass(frozen=False)
        class RunSpec:
            x: int = 0
        """, "repro/core/anything.py", config)
    assert [f.symbol for f in findings] == ["RunSpec"]


def test_plain_spec_named_class_not_a_dataclass_clean(config):
    findings = lint(
        """
        class HandSpec:
            def __init__(self):
                self.x = 0
        """, "repro/core/anything.py", config)
    assert findings == []


def test_unfrozen_dataclass_elsewhere_without_spec_name_clean(config):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class RunningTotals:
            count: int = 0
        """, "repro/core/anything.py", config)
    assert findings == []
