"""Tests for the ZBT SRAM functional model."""

import pytest

from repro.mem import ZbtSram


def test_read_uninitialized_is_zero():
    s = ZbtSram(64)
    assert s.read(10) == 0

def test_write_then_read():
    s = ZbtSram(64)
    s.write(5, 1234)
    assert s.read(5) == 1234

def test_access_counters():
    s = ZbtSram(64)
    s.write(0, 1)
    s.write(1, 2)
    s.read(0)
    assert s.write_count == 2
    assert s.read_count == 1
    assert s.access_count == 3
    s.reset_counters()
    assert s.access_count == 0

def test_out_of_range_raises():
    s = ZbtSram(8)
    with pytest.raises(IndexError):
        s.read(8)
    with pytest.raises(IndexError):
        s.write(-1, 0)

def test_size_validation():
    with pytest.raises(ValueError):
        ZbtSram(0)

def test_pipelined_cycles():
    s = ZbtSram(64)
    # N accesses + pipeline fill (2 cycles read latency)
    assert s.pipelined_cycles(1) == 3
    assert s.pipelined_cycles(6) == 8
    assert s.pipelined_cycles(0) == 0

def test_sparse_storage_handles_large_spaces():
    s = ZbtSram(1 << 24)  # 16M words, should not allocate
    s.write((1 << 24) - 1, 7)
    assert s.read((1 << 24) - 1) == 7
