"""Tests for the DDR bank-timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import Access, DdrModel, DdrTiming, MemOp


def make(banks=8, turnaround=True):
    return DdrModel(num_banks=banks, model_rw_turnaround=turnaround)

def test_bank_busy_window_after_issue():
    ddr = make()
    a = Access(MemOp.WRITE, bank=3)
    ddr.issue(a, 0)
    assert ddr.bank_busy_at(3, 1)
    assert ddr.bank_busy_at(3, 3)
    assert not ddr.bank_busy_at(3, 4)  # free after 160 ns = 4 slots
    assert not ddr.bank_busy_at(2, 1)  # other banks unaffected

def test_earliest_issue_same_bank_waits_full_precharge():
    ddr = make()
    ddr.issue(Access(MemOp.WRITE, bank=0), 0)
    nxt = Access(MemOp.WRITE, bank=0)
    assert ddr.earliest_issue_slot(nxt, 1) == 4

def test_earliest_issue_other_bank_next_slot():
    ddr = make()
    ddr.issue(Access(MemOp.WRITE, bank=0), 0)
    assert ddr.earliest_issue_slot(Access(MemOp.WRITE, bank=1), 1) == 1

def test_write_after_read_turnaround_penalty():
    ddr = make(turnaround=True)
    ddr.issue(Access(MemOp.READ, bank=0), 0)
    # write to a different bank wants slot 1 but must wait one extra cycle
    assert ddr.earliest_issue_slot(Access(MemOp.WRITE, bank=1), 1) == 2

def test_no_penalty_when_turnaround_unmodeled():
    ddr = make(turnaround=False)
    ddr.issue(Access(MemOp.READ, bank=0), 0)
    assert ddr.earliest_issue_slot(Access(MemOp.WRITE, bank=1), 1) == 1

def test_read_after_read_no_penalty():
    ddr = make(turnaround=True)
    ddr.issue(Access(MemOp.READ, bank=0), 0)
    assert ddr.earliest_issue_slot(Access(MemOp.READ, bank=1), 1) == 1

def test_read_after_write_no_penalty():
    ddr = make(turnaround=True)
    ddr.issue(Access(MemOp.WRITE, bank=0), 0)
    assert ddr.earliest_issue_slot(Access(MemOp.READ, bank=1), 1) == 1

def test_turnaround_overlaps_bank_busy():
    # the 1-bank row of Table 1: both loss columns are 0.75 because the
    # turnaround hides entirely inside the bank-precharge wait
    ddr = DdrModel(num_banks=1, model_rw_turnaround=True)
    ddr.issue(Access(MemOp.READ, bank=0), 0)
    write = Access(MemOp.WRITE, bank=0)
    assert ddr.earliest_issue_slot(write, 1) == 4  # not 4 + 1

def test_illegal_issue_raises():
    ddr = make()
    ddr.issue(Access(MemOp.WRITE, bank=0), 0)
    with pytest.raises(RuntimeError):
        ddr.issue(Access(MemOp.WRITE, bank=0), 2)  # bank still busy

def test_bank_out_of_range_raises():
    ddr = make(banks=4)
    with pytest.raises(ValueError):
        ddr.issue(Access(MemOp.WRITE, bank=4), 0)

def test_zero_banks_rejected():
    with pytest.raises(ValueError):
        DdrModel(num_banks=0)

def test_issue_returns_completion_slot():
    ddr = make()
    # write: 40 ns = 1 slot; read: 60 ns -> ceil = 2 slots
    assert ddr.issue(Access(MemOp.WRITE, bank=0), 0) == 1
    assert ddr.issue(Access(MemOp.READ, bank=1), 1) == 3

def test_data_delay_ns():
    ddr = make()
    assert ddr.data_delay_ns(MemOp.READ) == 60
    assert ddr.data_delay_ns(MemOp.WRITE) == 40

def test_counters_and_reset():
    ddr = make()
    ddr.issue(Access(MemOp.WRITE, bank=0), 0)
    ddr.issue(Access(MemOp.READ, bank=1), 1)
    assert ddr.total_issued == 2
    assert ddr.reads_issued == 1
    assert ddr.writes_issued == 1
    ddr.reset()
    assert ddr.total_issued == 0
    assert not ddr.bank_busy_at(0, 0)

def test_custom_timing_changes_busy_window():
    t = DdrTiming(access_cycle_ns=40, bank_busy_ns=80)
    ddr = DdrModel(timing=t, num_banks=2)
    ddr.issue(Access(MemOp.WRITE, bank=0), 0)
    assert ddr.earliest_issue_slot(Access(MemOp.WRITE, bank=0), 1) == 2

@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from([MemOp.READ, MemOp.WRITE]),
                          st.integers(0, 7)),
                min_size=1, max_size=60))
def test_property_earliest_issue_is_always_legal(ops):
    """earliest_issue_slot must always return a slot issue() accepts,
    and issues must be strictly monotone in time."""
    ddr = make()
    slot = 0
    prev = -1
    for op, bank in ops:
        a = Access(op, bank=bank)
        s = ddr.earliest_issue_slot(a, slot)
        assert s >= slot
        ddr.issue(a, s)  # must not raise
        assert s > prev
        prev = s
        slot = s + 1

@settings(max_examples=30, deadline=None)
@given(st.integers(1, 16))
def test_property_single_bank_stream_spacing(banks):
    """Accesses to one fixed bank are always >= 4 slots apart."""
    ddr = DdrModel(num_banks=banks, model_rw_turnaround=False)
    slots = []
    slot = 0
    for _ in range(10):
        a = Access(MemOp.WRITE, bank=0)
        s = ddr.earliest_issue_slot(a, slot)
        ddr.issue(a, s)
        slots.append(s)
        slot = s + 1
    gaps = [b - a for a, b in zip(slots, slots[1:])]
    assert all(g >= 4 for g in gaps)
