"""Engine equivalence for the batched DDR fast path.

The batched engine must produce results *field-for-field identical* to
the reference generator/DdrModel walk -- same RNG bit stream, same issue
slots, same stall decomposition -- across bank counts, seeds, history
depths and both ablation flags.  ``ScheduleResult`` is a dataclass, so
``==`` compares every field including the per-port issue counts.
"""

import pytest

from repro.mem import (
    DdrTiming,
    fast_throughput_loss,
    simulate_throughput_loss,
)
from repro.scenarios import Runner

BANKS = (1, 4, 8, 16)


@pytest.mark.parametrize("optimized", (False, True))
@pytest.mark.parametrize("rw", (False, True))
@pytest.mark.parametrize("banks", BANKS)
def test_fast_engine_bit_identical(banks, optimized, rw):
    kw = dict(num_banks=banks, optimized=optimized, model_rw_turnaround=rw,
              num_accesses=4000, seed=2005)
    ref = simulate_throughput_loss(engine="reference", **kw)
    fast = simulate_throughput_loss(engine="fast", **kw)
    assert fast == ref
    assert fast.loss == ref.loss

@pytest.mark.parametrize("seed", (0, 1, 42, 2005))
def test_fast_engine_seed_sweep(seed):
    kw = dict(num_banks=8, optimized=True, model_rw_turnaround=True,
              num_accesses=3000, seed=seed)
    assert (simulate_throughput_loss(engine="fast", **kw)
            == simulate_throughput_loss(engine="reference", **kw))

@pytest.mark.parametrize("history_depth", (0, 1, 2, 3))
def test_fast_engine_history_ablation(history_depth):
    """Ablation A1: shallow scheduler history must degrade identically."""
    kw = dict(num_banks=8, optimized=True, model_rw_turnaround=True,
              num_accesses=3000, seed=11, history_depth=history_depth)
    assert (simulate_throughput_loss(engine="fast", **kw)
            == simulate_throughput_loss(engine="reference", **kw))

def test_fast_engine_rw_grouping_ablation():
    """Ablation A4: read/write grouping preference must match."""
    kw = dict(num_banks=8, optimized=True, model_rw_turnaround=True,
              num_accesses=3000, seed=11, prefer_same_type=True)
    assert (simulate_throughput_loss(engine="fast", **kw)
            == simulate_throughput_loss(engine="reference", **kw))

def test_fast_engine_custom_timing():
    timing = DdrTiming(access_cycle_ns=40, bank_busy_ns=240,
                       write_after_read_penalty_cycles=2)
    kw = dict(num_banks=8, optimized=True, model_rw_turnaround=True,
              num_accesses=2000, seed=3, timing=timing)
    assert (simulate_throughput_loss(engine="fast", **kw)
            == simulate_throughput_loss(engine="reference", **kw))

def test_fast_throughput_loss_direct_entry_point():
    assert (fast_throughput_loss(8, optimized=True, model_rw_turnaround=False,
                                 num_accesses=2000)
            == simulate_throughput_loss(8, optimized=True,
                                        model_rw_turnaround=False,
                                        num_accesses=2000,
                                        engine="reference"))

def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        simulate_throughput_loss(8, optimized=True, model_rw_turnaround=False,
                                 num_accesses=100, engine="turbo")

def test_run_table1_engines_agree():
    """The full Table 1 scenario returns identical values on both engines."""
    fast = Runner().run("table1", fast=True, engine="fast")
    ref = Runner().run("table1", fast=True, engine="reference")
    assert fast.metrics == ref.metrics
