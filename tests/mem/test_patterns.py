"""Tests for access-pattern generators."""

import random
from itertools import islice

import pytest

from repro.mem import MemOp, hotspot_pattern, sequential_pattern, uniform_random_pattern
from repro.mem.patterns import paper_port_patterns


def take(pattern, n):
    return list(islice(pattern, n))

def test_uniform_banks_in_range_and_op_fixed():
    rng = random.Random(1)
    accesses = take(uniform_random_pattern(rng, 8, MemOp.READ, port=2), 500)
    assert all(0 <= a.bank < 8 for a in accesses)
    assert all(a.op is MemOp.READ for a in accesses)
    assert all(a.port == 2 for a in accesses)
    assert {a.bank for a in accesses} == set(range(8))  # all banks hit

def test_uniform_tags_increment():
    rng = random.Random(1)
    accesses = take(uniform_random_pattern(rng, 4, MemOp.WRITE), 10)
    assert [a.tag for a in accesses] == list(range(10))

def test_uniform_invalid_banks():
    with pytest.raises(ValueError):
        next(uniform_random_pattern(random.Random(1), 0, MemOp.READ))

def test_sequential_strides_through_banks():
    accesses = take(sequential_pattern(4, MemOp.WRITE), 8)
    assert [a.bank for a in accesses] == [0, 1, 2, 3, 0, 1, 2, 3]

def test_sequential_custom_stride():
    accesses = take(sequential_pattern(8, MemOp.WRITE, stride=3), 8)
    assert [a.bank for a in accesses] == [0, 3, 6, 1, 4, 7, 2, 5]

def test_sequential_invalid_banks():
    with pytest.raises(ValueError):
        next(sequential_pattern(0, MemOp.READ))

def test_hotspot_concentrates_accesses():
    rng = random.Random(7)
    accesses = take(
        hotspot_pattern(rng, 16, MemOp.READ, hot_banks=(3,), hot_fraction=0.9),
        2000,
    )
    hot = sum(1 for a in accesses if a.bank == 3)
    assert hot / len(accesses) > 0.85

def test_hotspot_validation():
    rng = random.Random(1)
    with pytest.raises(ValueError):
        next(hotspot_pattern(rng, 8, MemOp.READ, hot_fraction=1.5))
    with pytest.raises(ValueError):
        next(hotspot_pattern(rng, 8, MemOp.READ, hot_banks=()))
    with pytest.raises(ValueError):
        next(hotspot_pattern(rng, 8, MemOp.READ, hot_banks=(8,)))

def test_paper_port_patterns_layout():
    """Footnote 3: net write, net read, cpu write, cpu read."""
    rng = random.Random(1)
    ports = paper_port_patterns(rng, 8)
    assert len(ports) == 4
    ops = [next(p).op for p in ports]
    assert ops == [MemOp.WRITE, MemOp.READ, MemOp.WRITE, MemOp.READ]
