"""Property tests: the DES DDR controller never violates device timing."""

from hypothesis import given, settings, strategies as st

from repro.mem import DdrController, MemOp
from repro.sim import NS, Simulator


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.sampled_from([MemOp.READ, MemOp.WRITE]),
                          st.integers(0, 7)),
                min_size=2, max_size=24))
def test_issues_respect_bank_reuse_and_rate(ops):
    """Whatever the request mix, consecutive issues are >= one access
    cycle apart and same-bank issues >= the 160 ns precharge apart."""
    sim = Simulator()
    ctrl = DdrController(sim, num_banks=8, reorder_window=4)
    finished = []

    def client():
        events = [ctrl.submit(op, bank, tag=i)
                  for i, (op, bank) in enumerate(ops)]
        for ev in events:
            req = yield ev
            finished.append(req)

    sim.spawn(client())
    sim.run()
    assert len(finished) == len(ops)
    by_issue = sorted(finished, key=lambda r: r.issue_ps)
    for a, b in zip(by_issue, by_issue[1:]):
        assert b.issue_ps - a.issue_ps >= 40 * NS
    for bank in range(8):
        same = [r for r in by_issue if r.bank == bank]
        for a, b in zip(same, same[1:]):
            assert b.issue_ps - a.issue_ps >= 160 * NS

@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.sampled_from([MemOp.READ, MemOp.WRITE]),
                          st.integers(0, 7)),
                min_size=1, max_size=20))
def test_every_submission_completes_exactly_once(ops):
    sim = Simulator()
    ctrl = DdrController(sim, num_banks=8)
    seen_tags = []

    def client():
        events = [ctrl.submit(op, bank, tag=i)
                  for i, (op, bank) in enumerate(ops)]
        for ev in events:
            req = yield ev
            seen_tags.append(req.tag)

    sim.spawn(client())
    sim.run()
    assert sorted(seen_tags) == list(range(len(ops)))
    assert ctrl.completed == len(ops)

@settings(max_examples=20, deadline=None)
@given(st.integers(1, 16), st.integers(1, 8))
def test_reorder_window_preserves_completion_set(num_banks, window):
    """Reordering may change order, never drop or duplicate requests."""
    sim = Simulator()
    ctrl = DdrController(sim, num_banks=num_banks, reorder_window=window)
    done = []

    def client():
        events = [ctrl.submit(MemOp.WRITE, i % num_banks, tag=i)
                  for i in range(12)]
        for ev in events:
            req = yield ev
            done.append(req.tag)

    sim.spawn(client())
    sim.run()
    assert sorted(done) == list(range(12))
