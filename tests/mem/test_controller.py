"""Tests for DES-integrated memory controllers."""

import pytest

from repro.mem import DdrController, MemOp, SramController
from repro.sim import Clock, NS, Simulator


def test_single_read_latency_no_queueing():
    sim = Simulator()
    ctrl = DdrController(sim, num_banks=8, pipeline_overhead_ns=0)
    results = []

    def client():
        done = ctrl.submit(MemOp.READ, bank=0)
        req = yield done
        results.append(req)

    sim.spawn(client())
    sim.run()
    (req,) = results
    assert req.queue_wait_ps == 0
    assert req.service_ps == 60 * NS  # read delay
    assert ctrl.completed == 1

def test_single_write_latency():
    sim = Simulator()
    ctrl = DdrController(sim, num_banks=8)
    results = []

    def client():
        req = yield ctrl.submit(MemOp.WRITE, bank=2)
        results.append(req)

    sim.spawn(client())
    sim.run()
    assert results[0].service_ps == 40 * NS

def test_pipeline_overhead_added():
    sim = Simulator()
    ctrl = DdrController(sim, num_banks=8, pipeline_overhead_ns=100)
    results = []

    def client():
        req = yield ctrl.submit(MemOp.WRITE, bank=0)
        results.append(req)

    sim.spawn(client())
    sim.run()
    assert results[0].service_ps == (40 + 100) * NS

def test_same_bank_requests_serialized_by_precharge():
    sim = Simulator()
    ctrl = DdrController(sim, num_banks=8, reorder_window=1)
    done_times = []

    def client():
        e1 = ctrl.submit(MemOp.WRITE, bank=0)
        e2 = ctrl.submit(MemOp.WRITE, bank=0)
        r1 = yield e1
        done_times.append(r1.complete_ps)
        r2 = yield e2
        done_times.append(r2.complete_ps)

    sim.spawn(client())
    sim.run()
    # second access can only issue 160 ns after the first
    assert done_times[1] - done_times[0] >= 160 * NS

def test_reorder_window_lets_idle_bank_overtake():
    sim = Simulator()
    fifo_ctrl = DdrController(sim, num_banks=8, reorder_window=1, name="fifo")
    sim2 = Simulator()
    ooo_ctrl = DdrController(sim2, num_banks=8, reorder_window=4, name="ooo")

    def workload(ctrl, sim_, record):
        # bank 0 twice (conflict), then bank 1 (idle)
        ctrl.submit(MemOp.WRITE, bank=0)
        ctrl.submit(MemOp.WRITE, bank=0)
        done = ctrl.submit(MemOp.WRITE, bank=1)
        req = yield done
        record.append(req.complete_ps)

    fifo_t, ooo_t = [], []
    sim.spawn(workload(fifo_ctrl, sim, fifo_t))
    sim2.spawn(workload(ooo_ctrl, sim2, ooo_t))
    sim.run()
    sim2.run()
    assert ooo_t[0] < fifo_t[0]  # reordering finishes the idle-bank access sooner

def test_bank_range_validation():
    sim = Simulator()
    ctrl = DdrController(sim, num_banks=4)
    with pytest.raises(ValueError):
        ctrl.submit(MemOp.READ, bank=4)

def test_reorder_window_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        DdrController(sim, reorder_window=0)

def test_latency_recorders_populated():
    sim = Simulator()
    ctrl = DdrController(sim, num_banks=8)

    def client():
        for i in range(10):
            yield ctrl.submit(MemOp.WRITE, bank=i % 8)

    sim.spawn(client())
    sim.run()
    assert ctrl.queue_wait.count == 10
    assert ctrl.service.count == 10
    assert ctrl.service.mean > 0

# ------------------------------------------------------------------ SRAM

def test_sram_controller_read_latency():
    sim = Simulator()
    clk = Clock(125)
    zbt = SramController(sim, clk, read_latency_cycles=2)
    times = []

    def client():
        t = yield from zbt.access(is_read=True)
        times.append((sim.now, t))

    sim.spawn(client())
    sim.run()
    # start at edge 0, data 2 cycles later
    assert times[0][0] == 2 * clk.period_ps

def test_sram_controller_pipelining_back_to_back():
    sim = Simulator()
    clk = Clock(125)
    zbt = SramController(sim, clk)
    finish = []

    def a():
        yield from zbt.access(is_read=False)
        finish.append(("a", sim.now))

    def b():
        yield from zbt.access(is_read=False)
        finish.append(("b", sim.now))

    sim.spawn(a())
    sim.spawn(b())
    sim.run()
    # one access per cycle: writes post at cycles 1 and 2
    ta = dict(finish)["a"]
    tb = dict(finish)["b"]
    assert tb - ta == clk.period_ps
    assert zbt.accesses == 2

def test_sram_burst_timing():
    sim = Simulator()
    clk = Clock(125)
    zbt = SramController(sim, clk, read_latency_cycles=2)
    times = []

    def client():
        t = yield from zbt.burst(6, reads=2)
        times.append(t)

    sim.spawn(client())
    sim.run()
    # 6 slots + 2 cycles read tail = 8 cycles
    assert times[0] == 8 * clk.period_ps

def test_sram_burst_zero_is_noop():
    sim = Simulator()
    clk = Clock(125)
    zbt = SramController(sim, clk)

    def client():
        t = yield from zbt.burst(0)
        assert t == sim.now
        yield 0

    sim.spawn(client())
    sim.run()
    assert zbt.accesses == 0

def test_sram_negative_latency_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        SramController(sim, Clock(125), read_latency_cycles=-1)
