"""Tests for memory timing parameter sets."""

import pytest

from repro.mem import DdrTiming, ZbtTiming


def test_paper_defaults():
    t = DdrTiming()
    assert t.access_cycle_ns == 40
    assert t.bank_busy_ns == 160
    assert t.read_delay_ns == 60
    assert t.write_delay_ns == 40
    assert t.write_after_read_penalty_cycles == 1

def test_bank_busy_cycles():
    assert DdrTiming().bank_busy_cycles == 4

def test_peak_gbps_matches_paper():
    # "The DDR technology provides 12.8 Gbps of peak throughput when
    # using a 64-bit data bus at 100 MHz with double clocking"
    assert DdrTiming().peak_gbps == pytest.approx(12.8)

def test_bytes_per_access():
    assert DdrTiming().bytes_per_access == 64

def test_bank_busy_must_be_multiple_of_access_cycle():
    with pytest.raises(ValueError):
        DdrTiming(access_cycle_ns=40, bank_busy_ns=150)

def test_nonpositive_access_cycle_rejected():
    with pytest.raises(ValueError):
        DdrTiming(access_cycle_ns=0)

def test_negative_penalty_rejected():
    with pytest.raises(ValueError):
        DdrTiming(write_after_read_penalty_cycles=-1)

def test_zbt_defaults_valid():
    t = ZbtTiming()
    assert t.accesses_per_cycle == 1
    assert t.read_latency_cycles == 2

def test_zbt_validation():
    with pytest.raises(ValueError):
        ZbtTiming(clock_mhz=0)
    with pytest.raises(ValueError):
        ZbtTiming(accesses_per_cycle=0)
