"""Tests for the Table 1 schedulers: serializing vs reordering."""

import random

import pytest

from repro.mem import (
    DdrModel,
    MemOp,
    PortSpec,
    run_reordering,
    run_serializing,
    sequential_pattern,
    simulate_throughput_loss,
    uniform_random_pattern,
)

N = 30_000  # accesses per cell; enough for ~1% repeatability

def loss(banks, optimized, rw, **kw):
    return simulate_throughput_loss(banks, optimized=optimized,
                                    model_rw_turnaround=rw,
                                    num_accesses=N, **kw).loss

# ------------------------------------------------------- paper anchoring

def test_one_bank_loss_is_exactly_three_quarters():
    """With 1 bank every access waits the full 160 ns precharge: the
    analytic loss is 3/4 in all four Table 1 configurations."""
    for opt in (False, True):
        for rw in (False, True):
            assert loss(1, opt, rw) == pytest.approx(0.75, abs=0.005)

def test_serializing_conflict_losses_match_table1():
    expected = {4: 0.522, 8: 0.384, 12: 0.305, 16: 0.253}
    for banks, want in expected.items():
        assert loss(banks, optimized=False, rw=False) == pytest.approx(want, abs=0.02)

def test_reordering_conflict_losses_match_table1():
    expected = {4: 0.260, 8: 0.046, 12: 0.012, 16: 0.003}
    for banks, want in expected.items():
        assert loss(banks, optimized=True, rw=False) == pytest.approx(want, abs=0.02)

def test_optimization_halves_loss_at_8_banks():
    """Paper: 'Assuming 8 banks per device, this very simple optimization
    scheme reduces the throughput loss by 50%' (with interleaving)."""
    base = loss(8, optimized=False, rw=True)
    opt = loss(8, optimized=True, rw=True)
    assert opt < 0.62 * base

def test_interleaving_adds_loss_for_reordering():
    assert loss(8, True, True) > loss(8, True, False) + 0.05

# ----------------------------------------------------------- monotonicity

def test_loss_decreases_with_banks_serializing():
    losses = [loss(b, False, False) for b in (1, 4, 8, 16)]
    assert losses == sorted(losses, reverse=True)

def test_loss_decreases_with_banks_reordering():
    losses = [loss(b, True, False) for b in (1, 4, 8, 16)]
    assert losses == sorted(losses, reverse=True)

def test_reordering_never_worse_than_serializing():
    for banks in (1, 4, 8, 16):
        assert loss(banks, True, False) <= loss(banks, False, False) + 0.01

# --------------------------------------------------------------- details

def test_sequential_pattern_has_no_conflicts_when_enough_banks():
    """4 interleaved sequential ports across 8 banks never conflict under
    reordering: utilization reaches ~1."""
    ddr = DdrModel(num_banks=8, model_rw_turnaround=False)
    ports = [
        PortSpec(f"p{i}", sequential_pattern(8, MemOp.WRITE, port=i, stride=1))
        for i in range(4)
    ]
    res = run_reordering(ddr, ports, 5000)
    assert res.loss < 0.01

def test_serializing_per_port_fairness_exact():
    """Strict round-robin serialization issues the same count per port."""
    rng = random.Random(3)
    ddr = DdrModel(num_banks=8)
    ports = [
        PortSpec(f"p{i}", uniform_random_pattern(rng, 8, MemOp.WRITE, port=i))
        for i in range(4)
    ]
    res = run_serializing(ddr, ports, 4000)
    assert res.per_port_issued == [1000, 1000, 1000, 1000]

def test_reordering_per_port_roughly_fair():
    rng = random.Random(3)
    ddr = DdrModel(num_banks=8)
    ports = [
        PortSpec(f"p{i}", uniform_random_pattern(rng, 8, MemOp.WRITE, port=i))
        for i in range(4)
    ]
    res = run_reordering(ddr, ports, 8000)
    for count in res.per_port_issued:
        assert count == pytest.approx(2000, rel=0.1)

def test_result_accounting_consistent():
    res = simulate_throughput_loss(8, optimized=True, model_rw_turnaround=True,
                                   num_accesses=5000)
    assert res.issued == 5000
    assert res.elapsed_slots >= res.issued
    assert res.nop_slots == res.elapsed_slots - res.issued
    assert 0.0 <= res.loss < 1.0
    assert res.utilization == pytest.approx(1.0 - res.loss)

def test_determinism_same_seed():
    a = simulate_throughput_loss(8, True, True, num_accesses=5000, seed=42)
    b = simulate_throughput_loss(8, True, True, num_accesses=5000, seed=42)
    assert a.loss == b.loss
    assert a.per_port_issued == b.per_port_issued

def test_different_seeds_close_results():
    a = simulate_throughput_loss(8, True, False, num_accesses=N, seed=1)
    b = simulate_throughput_loss(8, True, False, num_accesses=N, seed=2)
    assert a.loss == pytest.approx(b.loss, abs=0.01)

def test_shallow_history_hurts_or_equal():
    """History < 3 makes the scheduler optimistic: it attempts busy banks
    and pays the residual precharge (ablation A1)."""
    full = loss(8, True, False, history_depth=3)
    shallow = loss(8, True, False, history_depth=1)
    assert shallow >= full - 0.005

def test_deeper_history_than_needed_changes_nothing():
    d3 = loss(8, True, False, history_depth=3)
    d8 = loss(8, True, False, history_depth=8)
    assert d8 == pytest.approx(d3, abs=0.02)

def test_prefer_same_type_reduces_turnaround_loss():
    base = simulate_throughput_loss(8, True, True, num_accesses=N)
    grouped = simulate_throughput_loss(8, True, True, num_accesses=N,
                                       prefer_same_type=True)
    assert grouped.turnaround_stall_slots < base.turnaround_stall_slots

def test_empty_ports_rejected():
    ddr = DdrModel(num_banks=8)
    with pytest.raises(ValueError):
        run_serializing(ddr, [], 10)
    with pytest.raises(ValueError):
        run_reordering(ddr, [], 10)

def test_negative_history_rejected():
    rng = random.Random(0)
    ddr = DdrModel(num_banks=8)
    ports = [PortSpec("p", uniform_random_pattern(rng, 8, MemOp.READ))]
    with pytest.raises(ValueError):
        run_reordering(ddr, ports, 10, history_depth=-1)

def test_zero_accesses():
    rng = random.Random(0)
    ddr = DdrModel(num_banks=8)
    ports = [PortSpec("p", uniform_random_pattern(rng, 8, MemOp.READ))]
    res = run_serializing(ddr, ports, 0)
    assert res.issued == 0
    assert res.loss == 0.0
