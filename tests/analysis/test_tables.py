"""Tests for table rendering."""

import pytest

from repro.analysis import format_comparison, format_table


def test_basic_alignment():
    out = format_table(["a", "bb"], [[1, 2], [10, 20]])
    lines = out.splitlines()
    assert len(lines) == 4
    # columns align: all data lines equal length
    assert len({len(l) for l in lines if "|" in l}) == 1

def test_title_included():
    out = format_table(["x"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"

def test_float_formatting():
    out = format_table(["v"], [[0.384]])
    assert "0.384" in out

def test_row_width_mismatch_rejected():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])

def test_empty_headers_rejected():
    with pytest.raises(ValueError):
        format_table([], [])

def test_comparison_adds_delta():
    out = format_comparison(["name", "paper", "ours"],
                            [["x", 100, 110], ["y", 50, 50]],
                            paper_col=1, model_col=2)
    assert "+10.0%" in out
    assert "+0.0%" in out

def test_comparison_zero_paper_value():
    out = format_comparison(["n", "p", "m"], [["x", 0, 0.5]],
                            paper_col=1, model_col=2)
    assert "+0.500" in out

def test_comparison_non_numeric_cells():
    out = format_comparison(["n", "p", "m"], [["x", "n/a", "n/a"]],
                            paper_col=1, model_col=2)
    assert "n/a" in out
