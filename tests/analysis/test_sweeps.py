"""Tests for the parameter-sweep helpers."""

import pytest

from repro.analysis.sweeps import (
    SweepSeries,
    ascii_plot,
    ddr_loss_vs_banks,
    ixp_cycles_vs_queues_closed_form,
    ixp_rate_vs_queues,
    mms_delay_vs_load,
    npu_rate_vs_clock,
)
from repro.npu import CopyStrategy


def test_ddr_loss_monotone_decreasing_in_banks():
    series = ddr_loss_vs_banks(banks=(1, 4, 8, 16), num_accesses=8000)
    ys = series.ys()
    assert ys == sorted(ys, reverse=True)
    assert series.xs() == [1.0, 4.0, 8.0, 16.0]

def test_ddr_loss_optimized_below_serializing():
    opt = ddr_loss_vs_banks(banks=(8,), optimized=True, num_accesses=8000)
    ser = ddr_loss_vs_banks(banks=(8,), optimized=False, num_accesses=8000)
    assert opt.ys()[0] < ser.ys()[0]

def test_ixp_rate_decreasing_in_queues():
    series = ixp_rate_vs_queues(queue_counts=(16, 128, 1024))
    ys = series.ys()
    assert ys == sorted(ys, reverse=True)

def test_ixp_closed_form_increasing():
    series = ixp_cycles_vs_queues_closed_form()
    ys = series.ys()
    assert ys == sorted(ys)
    # anchors: the Table 2 regimes
    d = dict(series.points)
    assert d[16.0] == 209.0
    assert d[1024.0] == 3333.0

def test_npu_rate_linear_in_clock():
    series = npu_rate_vs_clock(clocks_mhz=(100, 200, 400),
                               strategy=CopyStrategy.WORD)
    ys = series.ys()
    assert ys[1] == pytest.approx(2 * ys[0], rel=1e-6)
    assert ys[2] == pytest.approx(4 * ys[0], rel=1e-6)

def test_mms_delay_series_shapes():
    series = mms_delay_vs_load(loads_gbps=(1.6, 5.8), num_volleys=400)
    assert set(series) == {"fifo", "data", "total"}
    assert series["total"].ys()[1] > series["total"].ys()[0]
    assert series["fifo"].ys()[1] > series["fifo"].ys()[0]

def test_ascii_plot_renders_all_points():
    s = SweepSeries("demo", "x", "y", ((1.0, 1.0), (2.0, 2.0), (3.0, 0.0)))
    out = ascii_plot(s)
    assert out.count("|") == 3
    assert "demo" in out

def test_ascii_plot_empty_rejected():
    with pytest.raises(ValueError):
        ascii_plot(SweepSeries("e", "x", "y", ()))
