"""End-to-end tests of the (now deprecated) experiment drivers.

The drivers are shims over the scenario registry; byte-identity with the
new path is asserted in ``tests/scenarios/test_runner.py``.  These tests
keep the paper-tracking assertions on the legacy entry points.
"""

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    PAPER_TABLE4,
    run_figure1,
    run_figure2,
    run_table1,
    run_table3,
    run_table4,
)
from repro.analysis.cli import build_parser, main
from repro.analysis.experiments import EXPERIMENTS

#: Tier-1 runs with DeprecationWarnings as errors (pytest.ini); these
#: golden tests exercise the deprecated shims *on purpose*, so they are
#: the one place the warning is explicitly allowed.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def test_table1_report_matches_paper_conflict_columns():
    report = run_table1(fast=True)
    for banks, row in PAPER_TABLE1.items():
        ours = report.values[f"banks{banks}"]
        # serializing and optimized conflict-only columns track closely
        assert ours[0] == pytest.approx(row[0], abs=0.03)
        assert ours[2] == pytest.approx(row[2], abs=0.03)


def test_table3_report_exact():
    report = run_table3()
    assert report.values["enqueue_word"] == 216
    assert report.values["dequeue_word"] == 230
    assert report.values["line_copy"] == 24
    assert "Table 3" in report.rendered


def test_table4_report_exact():
    report = run_table4()
    for name, want in PAPER_TABLE4.items():
        assert report.values[name] == want


def test_figures_render():
    assert "PowerPC" in run_figure1().rendered
    assert "DMC" in run_figure2().rendered


def test_legacy_registry_covers_all_artifacts():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "table5",
        "figure1", "figure2", "headline",
    }


def test_cli_parser():
    args = build_parser().parse_args(["run", "table4"])
    assert args.command == "run"
    assert args.scenario == "table4"
    assert not args.fast
    args = build_parser().parse_args(["run", "all", "--fast"])
    assert args.fast
    args = build_parser().parse_args(
        ["run", "table1", "--engine", "reference", "--seed", "7"])
    assert args.engine == "reference"
    assert args.seed == 7


def test_cli_main_runs_table4(capsys):
    rc = main(["run", "table4"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "Table 4" in captured.out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "table9"])
