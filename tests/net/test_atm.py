"""Tests for ATM cell segmentation."""

import pytest

from repro.net import ATM_CELL_BYTES, ATM_PAYLOAD_BYTES, Packet, segment_into_cells
from repro.net.atm import AtmCell, cells_needed


def test_cell_constants():
    assert ATM_CELL_BYTES == 53
    assert ATM_PAYLOAD_BYTES == 48

def test_single_cell_packet():
    cells = segment_into_cells(Packet(40), vpi=1, vci=2)
    assert len(cells) == 1
    assert cells[0].last
    assert cells[0].payload_bytes == 48  # padded

def test_multi_cell_packet_markers():
    cells = segment_into_cells(Packet(100), vpi=1, vci=2)
    assert len(cells) == 3  # 48 + 48 + 4
    assert [c.last for c in cells] == [False, False, True]
    assert [c.index for c in cells] == [0, 1, 2]
    assert all(c.vpi == 1 and c.vci == 2 for c in cells)

def test_unpadded_last_cell_reports_true_payload():
    cells = segment_into_cells(Packet(100), vpi=0, vci=0, pad_last=False)
    assert cells[-1].payload_bytes == 4

def test_exact_multiple_no_extra_cell():
    cells = segment_into_cells(Packet(96), vpi=0, vci=0)
    assert len(cells) == 2
    assert cells[-1].payload_bytes == 48

def test_cells_needed():
    assert cells_needed(1) == 1
    assert cells_needed(48) == 1
    assert cells_needed(49) == 2
    with pytest.raises(ValueError):
        cells_needed(0)

def test_cell_validation():
    with pytest.raises(ValueError):
        AtmCell(vpi=4096, vci=0, pid=0, index=0, last=True, payload_bytes=48)
    with pytest.raises(ValueError):
        AtmCell(vpi=0, vci=65536, pid=0, index=0, last=True, payload_bytes=48)
    with pytest.raises(ValueError):
        AtmCell(vpi=0, vci=0, pid=0, index=0, last=True, payload_bytes=0)
