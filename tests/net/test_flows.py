"""Tests for flow tables and flow choosers."""

import random
from collections import Counter

import pytest

from repro.net import FlowTable, uniform_flow_chooser, zipf_flow_chooser


def test_flow_table_attrs():
    ft = FlowTable(8)
    ft.set_attr(3, priority=7, port=1)
    assert ft.get_attr(3, "priority") == 7
    assert ft.get_attr(3, "port") == 1
    assert ft.get_attr(3, "missing", default="x") == "x"
    assert ft.get_attr(0, "priority") is None

def test_flow_table_bounds():
    ft = FlowTable(4)
    with pytest.raises(ValueError):
        ft.set_attr(4, a=1)
    with pytest.raises(ValueError):
        ft.get_attr(-1, "a")

def test_flow_table_len_and_iter():
    ft = FlowTable(5)
    assert len(ft) == 5
    assert list(ft.flows()) == [0, 1, 2, 3, 4]

def test_flow_table_validation():
    with pytest.raises(ValueError):
        FlowTable(0)

def test_uniform_chooser_covers_all_flows():
    rng = random.Random(1)
    choose = uniform_flow_chooser(16)
    seen = {choose(rng) for _ in range(2000)}
    assert seen == set(range(16))

def test_uniform_chooser_roughly_flat():
    rng = random.Random(2)
    choose = uniform_flow_chooser(4)
    counts = Counter(choose(rng) for _ in range(8000))
    for flow in range(4):
        assert counts[flow] == pytest.approx(2000, rel=0.15)

def test_zipf_chooser_skews_to_low_ranks():
    rng = random.Random(3)
    choose = zipf_flow_chooser(64, s=1.2)
    counts = Counter(choose(rng) for _ in range(20000))
    assert counts[0] > counts[10] > counts.get(50, 0)

def test_zipf_zero_exponent_is_uniform():
    rng = random.Random(4)
    choose = zipf_flow_chooser(4, s=0.0)
    counts = Counter(choose(rng) for _ in range(8000))
    for flow in range(4):
        assert counts[flow] == pytest.approx(2000, rel=0.15)

def test_zipf_in_range():
    rng = random.Random(5)
    choose = zipf_flow_chooser(10, s=1.0)
    assert all(0 <= choose(rng) < 10 for _ in range(1000))

def test_chooser_validation():
    with pytest.raises(ValueError):
        uniform_flow_chooser(0)
    with pytest.raises(ValueError):
        zipf_flow_chooser(0)
    with pytest.raises(ValueError):
        zipf_flow_chooser(4, s=-1)
