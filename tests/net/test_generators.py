"""Tests for traffic generators."""

import random
from itertools import islice

import pytest

from repro.net import (
    cbr_stream,
    imix_stream,
    merge_streams,
    onoff_stream,
    poisson_stream,
    uniform_flow_chooser,
)
from repro.sim import SEC


def take(stream, n):
    return list(islice(stream, n))

def rate_of(timed, length_bytes=None):
    """Achieved Gbps over a list of TimedPacket (raw frame bits)."""
    if len(timed) < 2:
        return 0.0
    span = timed[-1].arrival_ps - timed[0].arrival_ps
    bits = sum(tp.packet.length_bytes for tp in timed[1:]) * 8
    return bits * 1000 / span

def test_cbr_spacing_is_constant():
    pkts = take(cbr_stream(1.0, 64), 10)
    gaps = {b.arrival_ps - a.arrival_ps for a, b in zip(pkts, pkts[1:])}
    assert len(gaps) == 1
    assert gaps.pop() == 512_000  # 512 bits at 1 Gbps = 512 ns

def test_cbr_achieves_requested_rate():
    pkts = take(cbr_stream(2.5, 64), 1000)
    assert rate_of(pkts) == pytest.approx(2.5, rel=0.01)

def test_cbr_flow_chooser_used():
    rng = random.Random(0)
    pkts = take(cbr_stream(1.0, 64, flow_chooser=uniform_flow_chooser(8),
                           rng=rng), 200)
    assert {tp.packet.flow_id for tp in pkts} == set(range(8))

def test_poisson_mean_rate():
    rng = random.Random(1)
    pkts = take(poisson_stream(1_000_000, rng=rng), 5000)
    span_s = (pkts[-1].arrival_ps - pkts[0].arrival_ps) / SEC
    assert (len(pkts) - 1) / span_s == pytest.approx(1_000_000, rel=0.05)

def test_poisson_arrivals_monotone():
    rng = random.Random(2)
    pkts = take(poisson_stream(1_000_000, rng=rng), 500)
    assert all(b.arrival_ps >= a.arrival_ps for a, b in zip(pkts, pkts[1:]))

def test_onoff_long_run_rate_matches_average():
    rng = random.Random(3)
    pkts = take(onoff_stream(2.0, burst_len=8, idle_factor=1.0, rng=rng), 4000)
    assert rate_of(pkts) == pytest.approx(2.0, rel=0.05)

def test_onoff_is_burstier_than_cbr():
    rng = random.Random(4)
    bursty = take(onoff_stream(1.0, burst_len=8, idle_factor=1.0, rng=rng), 2000)
    gaps = [b.arrival_ps - a.arrival_ps for a, b in zip(bursty, bursty[1:])]
    mean = sum(gaps) / len(gaps)
    var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    cv2 = var / mean**2
    assert cv2 > 0.3  # CBR has cv2 == 0

def test_imix_mixes_sizes_with_expected_ratio():
    rng = random.Random(5)
    pkts = take(imix_stream(1.0, rng=rng), 6000)
    sizes = [tp.packet.length_bytes for tp in pkts]
    n64 = sizes.count(64)
    n594 = sizes.count(594)
    n1518 = sizes.count(1518)
    assert n64 + n594 + n1518 == 6000
    assert n64 / n594 == pytest.approx(7 / 4, rel=0.15)
    assert n594 / n1518 == pytest.approx(4 / 1, rel=0.25)

def test_imix_rate():
    rng = random.Random(6)
    pkts = take(imix_stream(3.0, rng=rng), 4000)
    assert rate_of(pkts) == pytest.approx(3.0, rel=0.05)

def test_merge_streams_ordered():
    a = cbr_stream(1.0, 64, start_ps=0)
    b = cbr_stream(1.0, 64, start_ps=100_000)
    merged = take(merge_streams(a, b), 100)
    times = [tp.arrival_ps for tp in merged]
    assert times == sorted(times)

def test_generator_validation():
    with pytest.raises(ValueError):
        next(cbr_stream(0))
    with pytest.raises(ValueError):
        next(poisson_stream(0))
    with pytest.raises(ValueError):
        next(onoff_stream(1.0, burst_len=0))
    with pytest.raises(ValueError):
        next(onoff_stream(1.0, idle_factor=-1))
    with pytest.raises(ValueError):
        next(imix_stream(1.0, mix=[]))
    with pytest.raises(ValueError):
        merge_streams()

def test_determinism_with_same_rng_seed():
    a = take(poisson_stream(1e6, rng=random.Random(42)), 100)
    b = take(poisson_stream(1e6, rng=random.Random(42)), 100)
    assert [tp.arrival_ps for tp in a] == [tp.arrival_ps for tp in b]
