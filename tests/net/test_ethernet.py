"""Tests for Ethernet line-rate arithmetic (paper conventions)."""

import pytest

from repro.net import line_rate_pps, packet_service_time_ps, pps_to_gbps, wire_time_ps
from repro.sim import US


def test_paper_100mbps_64byte_budget():
    """Section 5.3: 'for a 100Mbps network and a minimum packet length of
    64 bytes the available time to serve this packet is 5.12 usec'."""
    assert packet_service_time_ps(64, 0.1) == round(5.12 * US)

def test_paper_ixp_150mbps_claim():
    """Section 4: 300 Kpps of 64-byte packets ~ 150 Mbps."""
    gbps = pps_to_gbps(300_000, 64)
    assert gbps == pytest.approx(0.1536)
    assert gbps < 0.154  # "cannot support more than 150 Mbps" (rounded)

def test_wire_time_includes_preamble_and_ifg():
    raw = packet_service_time_ps(64, 1.0)
    wire = wire_time_ps(64, 1.0)
    assert wire == packet_service_time_ps(64 + 8 + 12, 1.0)
    assert wire > raw

def test_gigabit_64byte_packet_rate():
    # raw convention: 1 Gbps / 512 bits = ~1.953 Mpps
    assert line_rate_pps(1.0, 64) == pytest.approx(1_953_125, rel=1e-6)
    # with overhead: 1 Gbps / 672 bits = ~1.488 Mpps (the classic figure)
    assert line_rate_pps(1.0, 64, include_overhead=True) == pytest.approx(
        1_488_095, rel=1e-4)

def test_mms_headline_rate_conversion():
    """Section 6.1: 12 Mops/s on 64-byte segments = 6.145 Gbps."""
    assert pps_to_gbps(12_000_000, 64) == pytest.approx(6.144)

def test_validation():
    with pytest.raises(ValueError):
        packet_service_time_ps(0, 1.0)
    with pytest.raises(ValueError):
        packet_service_time_ps(64, 0)
    with pytest.raises(ValueError):
        pps_to_gbps(-1)
