"""Tests for the packet abstraction."""

import pytest

from repro.net import Packet, SEGMENT_BYTES


def test_segment_count_exact_multiple():
    assert Packet(128).num_segments == 2

def test_segment_count_rounds_up():
    assert Packet(129).num_segments == 3
    assert Packet(1).num_segments == 1

def test_min_ethernet_frame_is_one_segment():
    assert Packet(64).num_segments == 1

def test_segment_lengths_last_short():
    p = Packet(150)
    assert p.segment_lengths() == [64, 64, 22]
    assert sum(p.segment_lengths()) == 150

def test_segment_lengths_full():
    assert Packet(128).segment_lengths() == [64, 64]

def test_pids_unique():
    a, b = Packet(64), Packet(64)
    assert a.pid != b.pid

def test_with_fields_preserves_identity():
    p = Packet(64, flow_id=3, fields={"dst": "a"})
    q = p.with_fields(dst="b", vlan=5)
    assert q.pid == p.pid
    assert q.fields == {"dst": "b", "vlan": 5}
    assert p.fields == {"dst": "a"}  # original untouched

def test_validation():
    with pytest.raises(ValueError):
        Packet(0)
    with pytest.raises(ValueError):
        Packet(64, flow_id=-1)

def test_segment_bytes_constant():
    assert SEGMENT_BYTES == 64
