"""Tests for packet traces."""

import pytest

from repro.net import Packet, PacketTrace
from repro.sim import US


def test_record_and_len():
    t = PacketTrace()
    t.record(0, Packet(64, flow_id=1))
    t.record(1000, Packet(128, flow_id=2))
    assert len(t) == 2
    assert t.total_bytes == 192

def test_non_monotone_rejected():
    t = PacketTrace()
    t.record(100, Packet(64))
    with pytest.raises(ValueError):
        t.record(99, Packet(64))

def test_rate_pps():
    t = PacketTrace()
    for i in range(11):
        t.record(i * int(US), Packet(64))
    assert t.rate_pps() == pytest.approx(1_000_000)

def test_rate_gbps():
    t = PacketTrace()
    # 64-byte packets every 512 ns -> 1 Gbps raw
    for i in range(101):
        t.record(i * 512_000, Packet(64))
    assert t.rate_gbps() == pytest.approx(1.0)

def test_empty_trace_rates_zero():
    t = PacketTrace()
    assert t.rate_pps() == 0.0
    assert t.rate_gbps() == 0.0
    assert t.duration_ps == 0

def test_per_flow_pids():
    t = PacketTrace()
    p1, p2, p3 = Packet(64, flow_id=0), Packet(64, flow_id=1), Packet(64, flow_id=0)
    for i, p in enumerate((p1, p2, p3)):
        t.record(i, p)
    flows = t.per_flow_pids()
    assert flows[0] == [p1.pid, p3.pid]
    assert flows[1] == [p2.pid]

def test_order_preservation_check():
    inp = PacketTrace("in")
    out = PacketTrace("out")
    pkts = [Packet(64, flow_id=i % 2) for i in range(6)]
    for i, p in enumerate(pkts):
        inp.record(i, p)
    # same per-flow order, different interleaving
    for i, p in enumerate([pkts[1], pkts[0], pkts[3], pkts[2], pkts[5], pkts[4]]):
        out.record(i, p)
    assert out.is_per_flow_order_preserved(inp)

def test_order_violation_detected():
    inp = PacketTrace("in")
    out = PacketTrace("out")
    a, b = Packet(64, flow_id=0), Packet(64, flow_id=0)
    inp.record(0, a)
    inp.record(1, b)
    out.record(0, b)
    out.record(1, a)
    assert not out.is_per_flow_order_preserved(inp)
