"""Policy invariants exercised through the real queue managers.

These are the satellite guarantees of the subsystem: LQD never evicts
the longest queue's head, DynamicThreshold obeys the alpha bound at
every accept, occupancy accounting matches the free list exactly, and
push-out keeps the pointer structure walkable.
"""

import random

import pytest

from repro.policies import (
    DroppedSegment,
    DynamicThreshold,
    LongestQueueDrop,
    PolicySpec,
    make_policy,
)
from repro.queueing import PacketQueueManager, QueueEmptyError, SegmentQueueManager
from repro.queueing.segment_queues import SegmentMeta


def make_pqm(policy, flows=8, segments=16):
    return PacketQueueManager(num_flows=flows, num_segments=segments,
                              num_descriptors=segments, policy=policy)


# ------------------------------------------------------------ LQD + PQM

def test_lqd_never_drops_longest_queue_head():
    """The victim's head packet (about to be serviced) must survive
    every push-out; LQD evicts from the tail."""
    pol = LongestQueueDrop(capacity=12)
    pqm = make_pqm(pol, segments=12)
    # queue 0: 8 packets with distinct pids; queue 1: 4
    for pid in range(8):
        pqm.admit_enqueue(0, eop=True, pid=pid)
    for pid in range(100, 104):
        pqm.admit_enqueue(1, eop=True, pid=pid)
    head_before = pqm.walk_packets(0)[0]
    # overload: arrivals on queue 2 force repeated push-outs of queue 0
    for pid in range(200, 204):
        result, _ = pqm.admit_enqueue(2, eop=True, pid=pid)
        assert not isinstance(result, DroppedSegment)
        assert pqm.walk_packets(0)[0] == head_before  # head untouched
    assert pol.stats.pushed_out_segments == 4
    # evictions came off the tail: the queue shrank back-to-front
    assert pqm.queued_packets(0) == 4


def test_lqd_pushout_keeps_structure_walkable_and_books_balanced():
    rng = random.Random(11)
    pol = LongestQueueDrop(capacity=10)
    pqm = make_pqm(pol, flows=4, segments=10)
    for i in range(200):
        flow = rng.randrange(4)
        if rng.random() < 0.7:
            pqm.admit_enqueue(flow, eop=True, pid=i)
        elif pqm.queued_packets(flow) > 0:
            pqm.dequeue_segment(flow)
        # books: policy occupancy == structure occupancy == free-list use
        structure = sum(pqm.queued_segments(f) + pqm.open_segments(f)
                        for f in range(4))
        assert pol.total_segments == structure
        assert pol.free_segments == pqm.free_segments
        for f in range(4):
            assert len(sum(pqm.walk_packets(f), [])) == pqm.queued_segments(f)


def test_lqd_single_packet_victim_may_lose_its_only_packet():
    """With one packet, tail == head: eviction is still legal LQD (the
    'never the head' guarantee is about multi-packet queues)."""
    pol = LongestQueueDrop(capacity=3)
    pqm = make_pqm(pol, segments=3)
    pqm.admit_enqueue(0, eop=False)
    pqm.admit_enqueue(0, eop=False)  # 2-segment open packet, never published
    pqm.admit_enqueue(1, eop=True)
    # buffer full; queue 0 is longest but has nothing published -> the
    # policy must fall back to the next viable victim (queue 1)
    result, _ = pqm.admit_enqueue(2, eop=True)
    assert not isinstance(result, DroppedSegment)
    assert pqm.queued_packets(1) == 0
    assert pol.stats.pushed_out_segments == 1


# ----------------------------------------------------- DynamicThreshold

def test_dynamic_threshold_alpha_bound_through_manager():
    """At every accepted arrival, len(q) < alpha * free held at
    decision time."""
    alpha = 0.75
    pol = DynamicThreshold(capacity=24, alpha=alpha)
    pqm = make_pqm(pol, flows=6, segments=24)
    rng = random.Random(5)
    accepts = drops = 0
    for i in range(300):
        flow = rng.randrange(6)
        if rng.random() < 0.25 and pqm.queued_packets(flow) > 0:
            pqm.dequeue_segment(flow)
            continue
        qlen_before = pol.queue_length(flow)
        free_before = pol.free_segments
        result, _ = pqm.admit_enqueue(flow, eop=True, pid=i)
        if isinstance(result, DroppedSegment):
            assert qlen_before >= alpha * free_before or free_before == 0
            drops += 1
        else:
            assert qlen_before < alpha * free_before
            accepts += 1
    assert accepts > 0 and drops > 0  # the workload actually overloaded


# --------------------------------------------------- SQM tail push-out

def test_sqm_lqd_pushout_evicts_tail_segment_not_head():
    pol = LongestQueueDrop(capacity=6)
    sqm = SegmentQueueManager(num_queues=3, num_slots=6, policy=pol)
    slots = [sqm.offer(0, SegmentMeta(pid=i))[0] for i in range(4)]
    sqm.offer(1, SegmentMeta(pid=90))
    sqm.offer(1, SegmentMeta(pid=91))
    # full: arrival on queue 2 evicts queue 0's *tail* (last slot)
    result, _ = sqm.offer(2, SegmentMeta(pid=99))
    assert not isinstance(result, DroppedSegment)
    assert sqm.walk_queue(0) == slots[:3]
    assert pol.stats.pushed_out_segments == 1


def test_sqm_drop_tail_segment_on_empty_queue_raises():
    sqm = SegmentQueueManager(num_queues=2, num_slots=4)
    with pytest.raises(QueueEmptyError):
        sqm.drop_tail_segment(0)


def test_sqm_drop_tail_single_segment_empties_queue():
    sqm = SegmentQueueManager(num_queues=2, num_slots=4)
    slot, _ = sqm.enqueue(0, SegmentMeta())
    got, _meta, _trace = sqm.drop_tail_segment(0)
    assert got == slot
    assert sqm.is_empty(0)
    assert sqm.free_slots == 4


# -------------------------------------------------------- PQM mechanics

def test_pqm_drop_tail_packet_multi_segment_frees_whole_chain():
    pqm = PacketQueueManager(num_flows=2, num_segments=8, num_descriptors=8)
    pqm.enqueue_segment(0, eop=False)
    pqm.enqueue_segment(0, eop=False)
    pqm.enqueue_segment(0, eop=True, length=10)   # 3-seg packet, 138 B
    pqm.enqueue_segment(0, eop=True)              # 1-seg packet (the tail)
    nsegs, nbytes, _trace = pqm.drop_tail_packet(0)
    assert (nsegs, nbytes) == (1, 64)
    nsegs, nbytes, _trace = pqm.drop_tail_packet(0)
    assert (nsegs, nbytes) == (3, 138)
    assert pqm.free_segments == 8 and pqm.free_descriptors == 8
    with pytest.raises(QueueEmptyError):
        pqm.drop_tail_packet(0)


def test_pqm_abort_open_packet_frees_partial_assembly():
    pqm = PacketQueueManager(num_flows=2, num_segments=8, num_descriptors=8)
    pqm.enqueue_segment(0, eop=False)
    pqm.enqueue_segment(0, eop=False)
    assert pqm.open_segments(0) == 2
    nsegs, nbytes = pqm.abort_open_packet(0)
    assert (nsegs, nbytes) == (2, 128)
    assert pqm.open_segments(0) == 0
    assert pqm.free_segments == 8 and pqm.free_descriptors == 8
    # idempotent on a flow with nothing open
    assert pqm.abort_open_packet(0) == (0, 0)
    # the flow still works afterwards
    pqm.enqueue_segment(0, eop=True)
    assert pqm.queued_packets(0) == 1


def test_admit_enqueue_without_policy_matches_legacy_path():
    pqm = PacketQueueManager(num_flows=2, num_segments=2, num_descriptors=2)
    slot, trace = pqm.admit_enqueue(0, eop=True)
    assert isinstance(slot, int) and trace
    pqm.admit_enqueue(0, eop=True)
    from repro.queueing import OutOfBuffersError
    with pytest.raises(OutOfBuffersError):
        pqm.admit_enqueue(0, eop=True)


def test_mms_policy_occupancy_counts_prefill():
    """Buffers consumed before the experiment (prefill) are occupancy
    the policy must see."""
    from repro.core import MMS, MmsConfig
    mms = MMS(MmsConfig(num_flows=4, num_segments=16, num_descriptors=16,
                        policy=PolicySpec(name="taildrop")))
    mms.prefill(range(4), packets_per_flow=2)
    assert mms.policy.total_segments == 8
    assert mms.policy.free_segments == mms.pqm.free_segments


def test_make_policy_sizes_from_mms_config():
    from repro.core import MMS, MmsConfig
    mms = MMS(MmsConfig(num_flows=4, num_segments=32, num_descriptors=32,
                        policy=PolicySpec(name="lqd")))
    assert mms.policy.capacity == 32
    assert mms.pqm.policy is mms.policy


# ------------------------------------------- descriptor exhaustion

def test_descriptor_exhaustion_is_a_drop_not_a_crash():
    """Descriptors can run out before segments (fewer descriptors than
    segments, single-segment packets): still a policy decision."""
    pol = make_policy(PolicySpec(name="taildrop"), capacity=8)
    pqm = PacketQueueManager(num_flows=4, num_segments=8, num_descriptors=2,
                             policy=pol)
    pqm.admit_enqueue(0, eop=True)
    pqm.admit_enqueue(1, eop=True)
    result, trace = pqm.admit_enqueue(2, eop=True)  # would need a 3rd desc
    assert isinstance(result, DroppedSegment)
    assert "descriptor" in result.reason
    assert trace == []
    assert pol.stats.dropped_segments == 1
    # a segment starting any new packet needs a descriptor: also dropped
    result, _ = pqm.admit_enqueue(3, eop=False)
    assert isinstance(result, DroppedSegment)
    assert pol.stats.dropped_segments == 2


def test_lqd_pushes_out_to_free_a_descriptor():
    """LQD treats descriptor exhaustion like buffer-full: evicting the
    longest queue's tail packet frees its descriptor too."""
    pol = make_policy(PolicySpec(name="lqd"), capacity=8)
    pqm = PacketQueueManager(num_flows=4, num_segments=8, num_descriptors=2,
                             policy=pol)
    pqm.admit_enqueue(0, eop=True)
    pqm.admit_enqueue(0, eop=True)   # queue 0: 2 packets, both descriptors
    result, _ = pqm.admit_enqueue(1, eop=True)
    assert not isinstance(result, DroppedSegment)
    assert pol.stats.pushed_out_segments == 1
    assert pqm.queued_packets(0) == 1 and pqm.queued_packets(1) == 1


def test_app_descriptor_exhaustion_drops_instead_of_raising():
    """The review repro: more single-segment packets than descriptors
    through an app pipeline must degrade to drops."""
    from repro.apps import IpRouter
    from repro.net.packet import Packet
    r = IpRouter(num_next_hops=2, policy=PolicySpec(name="taildrop"))
    n_desc = r.mms.config.num_descriptors
    for i in range(n_desc + 5):
        r.receive(Packet(length_bytes=32,
                         fields={"dst_ip": "10.0.0.1", "ttl": 8}))
    assert r.dropped_policy == 5


# --------------------------------------- push-out metadata accounting

def test_pushout_listener_releases_app_metadata():
    from repro.apps import IpRouter
    from repro.net.packet import Packet
    from repro.core import MMS, MmsConfig
    mms = MMS(MmsConfig(num_flows=3, num_segments=8, num_descriptors=8,
                        policy=PolicySpec(name="lqd")))
    r = IpRouter(num_next_hops=2, mms=mms)
    r.table.add("10.0.0.0", 8, 0)
    for _ in range(8):
        r.receive(Packet(length_bytes=32,
                         fields={"dst_ip": "10.0.0.1", "ttl": 8}))
        r.route_all()   # everything lands in next-hop queue 0
    assert len(r._pkt_meta) == 8
    for _ in range(3):  # overload: push-outs evict queue 0's tail
        r.receive(Packet(length_bytes=32,
                         fields={"dst_ip": "10.0.0.1", "ttl": 8}))
    assert r.pushed_out == 3
    # metadata book matches buffered packets exactly: no leak
    buffered = sum(mms.pqm.queued_packets(f) + (1 if mms.pqm.open_segments(f) else 0)
                   for f in range(3))
    assert len(r._pkt_meta) == buffered


def test_switch_policy_drop_not_double_counted():
    from repro.apps import QosEthernetSwitch, SwitchConfig
    from repro.net.packet import Packet
    sw = QosEthernetSwitch(SwitchConfig(num_ports=2, segments_per_port=1,
                                        policy=PolicySpec(name="taildrop")))
    sw.ingress(0, Packet(length_bytes=64, fields={"src_mac": "a",
                                                  "dst_mac": "b"}))
    sw.ingress(1, Packet(length_bytes=64, fields={"src_mac": "b",
                                                  "dst_mac": "a"}))
    before = sw.frames_dropped
    # buffer (2 segments) is now full: the next unicast is policy-only
    sw.ingress(0, Packet(length_bytes=64, fields={"src_mac": "a",
                                                  "dst_mac": "b"}))
    assert sw.frames_dropped_policy == 1
    assert sw.frames_dropped == before  # not double-counted


def test_switch_pushout_accounting_and_meta_release():
    from repro.apps import QosEthernetSwitch, SwitchConfig
    from repro.net.packet import Packet
    sw = QosEthernetSwitch(SwitchConfig(num_ports=2, segments_per_port=2,
                                        policy=PolicySpec(name="lqd")))
    # fill port 1's queue (dst b) until the 4-segment buffer is full
    for _ in range(4):
        sw.ingress(0, Packet(length_bytes=64, fields={"src_mac": "a",
                                                      "dst_mac": "b"}))
    sw._mac_table["a"] = 0  # teach the reverse path without an ingress
    # arrival on the *short* queue (port 0): LQD evicts port 1's tail
    sw.ingress(1, Packet(length_bytes=64, fields={"src_mac": "b",
                                                  "dst_mac": "a"}))
    assert sw.frames_pushed_out == 1
    queued = sum(sw.queued_frames(p) for p in range(2))
    assert len(sw._pkt_meta) == queued  # refs released on push-out
    # egress also releases metadata
    while any(sw.egress(p) for p in range(2)):
        pass
    assert sw._pkt_meta == {}


# ---------------------------------------------- policy-aware appends

def test_append_under_full_buffer_is_a_drop_not_a_crash():
    """Header prepend / trailer append during overload must go through
    admission like any arrival (the review repro: encapsulation on a
    pinned-full buffer used to raise OutOfBuffersError)."""
    from repro.apps import PppEncapsulator
    from repro.net.packet import Packet
    from repro.core import MMS, MmsConfig
    mms = MMS(MmsConfig(num_flows=2, num_segments=4, num_descriptors=4,
                        policy=PolicySpec(name="taildrop")))
    enc = PppEncapsulator(mms=mms)
    for _ in range(4):
        assert enc.load(Packet(length_bytes=32))
    segs = enc.encapsulate_head()   # buffer full: header buffer dropped
    assert segs == 1
    assert enc.dropped_policy == 1
    assert enc.encapsulated == 0


def test_lqd_append_does_not_evict_its_own_target_packet():
    """An append's push-out must never evict the packet being appended
    to (the target flow is protected)."""
    pol = make_policy(PolicySpec(name="lqd"), capacity=4)
    pqm = make_pqm(pol, flows=3, segments=4)
    pqm.admit_enqueue(0, eop=True, pid=7)   # flow 0: single packet
    for pid in (20, 21, 22):
        pqm.admit_enqueue(1, eop=True, pid=pid)
    # full; append to flow 0: flow 1 (longest, unprotected) is evicted
    slot, _ = pqm.append_head(0, pid=7)
    assert not isinstance(slot, DroppedSegment)
    assert pqm.queued_packets(0) == 1
    assert pqm.queued_segments(0) == 2
    assert pol.stats.pushed_out_segments == 1


def test_failing_append_does_not_corrupt_policy_state():
    """An append whose preconditions fail must raise BEFORE admission:
    no push-out, no stats change, no leaked slot (the review repro)."""
    pol = make_policy(PolicySpec(name="lqd"), capacity=5)
    pqm = make_pqm(pol, flows=3, segments=5)
    pqm.admit_enqueue(0, eop=False)
    pqm.admit_enqueue(0, eop=True, length=10)   # short last segment
    for pid in (1, 2, 3):
        pqm.admit_enqueue(1, eop=True, pid=pid)
    accepted_before = pol.stats.accepted_segments
    # buffer full; append behind a short last segment must fail cleanly
    with pytest.raises(ValueError, match="short last segment"):
        pqm.append_tail(0, length=4)
    with pytest.raises(QueueEmptyError):
        pqm.append_head(2)                      # empty flow
    assert pol.stats.accepted_segments == accepted_before
    assert pol.stats.pushed_out_segments == 0   # no innocent evictions
    assert pqm.queued_packets(1) == 3
    assert pol.free_segments == pqm.free_segments == 0
    # the books still balance: a dequeue frees exactly one admission
    pqm.dequeue_segment(1)
    result, _ = pqm.admit_enqueue(2, eop=True)
    assert not isinstance(result, DroppedSegment)


# ------------------------------------- SQM multi-segment truncation

def test_sqm_pushout_of_eop_truncates_packet_coherently():
    """Evicting the tail (EOP) segment of a multi-segment packet must
    move the end-of-packet mark and fix the accumulated length, so the
    packet dequeues as a truncated-but-framed unit."""
    pol = make_policy(PolicySpec(name="lqd"), capacity=4)
    sqm = SegmentQueueManager(num_queues=2, num_slots=4, policy=pol)
    slots = []
    head = None
    for i in range(3):
        meta = SegmentMeta(eop=(i == 2), length=64 if i < 2 else 40,
                           pid=5, index=i)
        slot, _ = sqm.offer(0, meta, packet_head_slot=head)
        if head is None:
            head = slot
        slots.append(slot)
    sqm.offer(1, SegmentMeta(pid=9))
    # full: arrival on queue 1... queue 0 is longest -> evict its tail
    result, _ = sqm.offer(1, SegmentMeta(pid=10))
    assert not isinstance(result, DroppedSegment)
    assert sqm.walk_queue(0) == slots[:2]
    assert sqm.meta_of(slots[1]).eop          # EOP moved to the new tail
    assert sqm.packet_length_bytes(head) == 128  # evicted 40 B removed
    got = sqm.dequeue_packet(0)               # frames correctly
    assert [s for s, _m in got] == slots[:2]

def test_strict_microcode_still_checks_accepted_enqueues():
    """Installing a policy must not disable the schedule cross-check
    for commands that actually execute."""
    from repro.core import MMS, Command, CommandType, MmsConfig
    mms = MMS(MmsConfig(num_flows=16, num_segments=8, num_descriptors=8,
                        strict_microcode=True,
                        policy=PolicySpec(name="taildrop")))
    sim = mms.sim

    def feed():
        # non-EOP enqueues to distinct flows: each accepted one is the
        # typical-path trace the schedule prices (see
        # test_strict_microcode_on_typical_paths), so the strict check
        # stays armed; the overflow arrivals are dropped (no pointer
        # traffic) and must NOT trip it
        for flow in range(11):
            yield from mms.submit(0, Command(type=CommandType.ENQUEUE,
                                             flow=flow, eop=False))

    sim.spawn(feed())
    sim.run()
    assert mms.drop_stats.accepted_segments == 8
    assert mms.drop_stats.dropped_segments == 3
