"""The scalar admit fast path must be a sound under-approximation of
``decide``: whenever ``admit_fast`` accepts, ``decide`` would have
accepted too (unblocked), and taking the fast path leaves the policy in
the same state as not consulting it at all."""

import random

import pytest

from repro.policies import (
    DynamicThreshold,
    LongestQueueDrop,
    RandomEarlyDetection,
    TailDrop,
)

POLICIES = [
    lambda: TailDrop(64),
    lambda: TailDrop(64, per_queue_limit=5),
    lambda: DynamicThreshold(64, alpha=0.75),
    lambda: DynamicThreshold(64, alpha=2.0),
    lambda: LongestQueueDrop(64),
]


def random_books(policy, rng):
    for q in range(8):
        segs = rng.randrange(0, 12)
        if segs:
            policy.note_enqueue(q, segs * 64, segments=segs)


@pytest.mark.parametrize("make", POLICIES)
def test_admit_fast_implies_decide_accepts(make):
    rng = random.Random(99)
    for _trial in range(200):
        policy = make()
        random_books(policy, rng)
        q = rng.randrange(0, 8)
        if policy.admit_fast(q, 64):
            decision = policy.decide(q, 64, frozenset(), blocked=False)
            assert decision.action == "accept"


@pytest.mark.parametrize("make", POLICIES)
def test_admit_fast_declines_at_capacity(make):
    policy = make()
    policy.note_enqueue(0, policy.capacity * 64, segments=policy.capacity)
    assert not policy.admit_fast(1, 64)


def test_red_always_takes_the_slow_path():
    """RED's average filter and RNG advance per offered segment, so the
    scalar path must never bypass decide()."""
    policy = RandomEarlyDetection(64, seed=5)
    assert not policy.admit_fast(0, 64)
    policy.note_enqueue(0, 64)
    assert not policy.admit_fast(0, 64)


def test_taildrop_fast_path_respects_queue_limit():
    policy = TailDrop(64, per_queue_limit=2)
    policy.note_enqueue(3, 128, segments=2)
    assert not policy.admit_fast(3, 64)
    assert policy.admit_fast(4, 64)
