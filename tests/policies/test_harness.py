"""Overload harness behavior and fast/reference engine identity.

The acceptance bar of the overload family: every policy runs on at
least three traffic shapes through the Runner/CLI, and the fast and
reference DES kernels report byte-identical drop/accept counters.
"""

import pytest

from repro.policies import PolicySpec
from repro.policies.harness import OVERLOAD_MMS_CFG, SHAPES, run_overload
from repro.scenarios import Runner

ALL_POLICIES = [PolicySpec(name="taildrop"), PolicySpec(name="red"),
                PolicySpec(name="dynamic-threshold"), PolicySpec(name="lqd")]


def test_unknown_shape_rejected():
    with pytest.raises(ValueError, match="shape"):
        run_overload(PolicySpec(name="taildrop"), "trickle")


def test_bad_arrivals_and_flows_rejected():
    with pytest.raises(ValueError, match="num_arrivals"):
        run_overload(PolicySpec(name="taildrop"), "burst", num_arrivals=0)
    with pytest.raises(ValueError, match="active_flows"):
        run_overload(PolicySpec(name="taildrop"), "burst",
                     active_flows=OVERLOAD_MMS_CFG.num_flows + 1)


@pytest.mark.parametrize("shape", SHAPES)
def test_overload_actually_overloads_and_conserves(shape):
    """Every shape must produce loss, and the segment books must
    balance: accepted = dequeued + pushed out + residual."""
    res = run_overload(PolicySpec(name="taildrop"), shape, num_arrivals=300)
    assert res.offered_segments == 300
    assert res.dropped_segments > 0, "no overload reached"
    assert res.accepted_segments == (res.dequeued_segments
                                     + res.pushed_out_segments
                                     + res.residual_segments)
    assert res.accepted_segments + res.dropped_segments == 300
    assert res.capacity_segments == OVERLOAD_MMS_CFG.num_segments


def test_traffic_shapes_are_not_degenerate():
    """The three shapes must measure different things: identical
    counters across shapes would mean the pacing is inert (e.g. FIFO
    backpressure serializing everything into one arrival pattern)."""
    for policy in ALL_POLICIES:
        seen = set()
        for shape in SHAPES:
            r = run_overload(policy, shape, num_arrivals=600)
            seen.add((r.accepted_segments, r.dropped_segments,
                      r.pushed_out_segments))
        assert len(seen) == len(SHAPES), f"{policy.name}: shapes degenerate"


def test_lqd_pushes_out_under_burst():
    res = run_overload(PolicySpec(name="lqd"), "burst", num_arrivals=300)
    assert res.pushed_out_segments > 0
    # push-out admits arrivals that taildrop would lose
    td = run_overload(PolicySpec(name="taildrop"), "burst", num_arrivals=300)
    assert res.dropped_segments < td.dropped_segments


def test_seed_changes_red_drops():
    a = run_overload(PolicySpec(name="red"), "sustained",
                     num_arrivals=300, seed=1)
    b = run_overload(PolicySpec(name="red"), "sustained",
                     num_arrivals=300, seed=2)
    assert a.counters() != b.counters()


# ----------------------------------------- engine identity (acceptance)

@pytest.mark.parametrize("policy", ALL_POLICIES,
                         ids=[p.name for p in ALL_POLICIES])
@pytest.mark.parametrize("shape", SHAPES)
def test_fast_and_reference_engines_report_identical_counters(policy, shape):
    fast = run_overload(policy, shape, num_arrivals=240, engine="fast")
    ref = run_overload(policy, shape, num_arrivals=240, engine="reference")
    assert fast.counters() == ref.counters()


def test_runner_overload_scenario_engine_identity():
    """The ISSUE acceptance path: overload-lqd-burst through the Runner
    on both engines, byte-identical metrics (wall-clock excluded)."""
    runner = Runner()
    fast = runner.run("overload-lqd-burst", fast=True, engine="fast")
    ref = runner.run("overload-lqd-burst", fast=True, engine="reference")
    assert fast.metrics == ref.metrics
    assert fast.engine == "fast" and ref.engine == "reference"
    assert fast.blocks == ref.blocks


def test_every_overload_scenario_runs_via_runner():
    runner = Runner()
    for stem in ("taildrop", "red", "dt", "lqd"):
        for shape in SHAPES:
            r = runner.run(f"overload-{stem}-{shape}", fast=True)
            assert r.kind == "overload"
            assert r.metrics["offered_segments"] > 0
            assert r.metrics["shape"] == shape
