"""Unit tests for the buffer-management policies."""

import pytest

from repro.policies import (
    DynamicThreshold,
    LongestQueueDrop,
    PolicySpec,
    RandomEarlyDetection,
    TailDrop,
    make_policy,
)


# ------------------------------------------------------------- PolicySpec

def test_policy_spec_rejects_unknown_name():
    with pytest.raises(ValueError, match="policy"):
        PolicySpec(name="coin-flip")


def test_policy_spec_validates_parameters():
    with pytest.raises(ValueError, match="alpha"):
        PolicySpec(name="dynamic-threshold", alpha=0)
    with pytest.raises(ValueError, match="per_queue_limit"):
        PolicySpec(name="taildrop", per_queue_limit=0)
    with pytest.raises(ValueError, match="red_min_frac"):
        PolicySpec(name="red", red_min_frac=0.9, red_max_frac=0.5)
    with pytest.raises(ValueError, match="red_max_p"):
        PolicySpec(name="red", red_max_p=0.0)


def test_make_policy_builds_every_family():
    for name, cls in (("taildrop", TailDrop),
                      ("red", RandomEarlyDetection),
                      ("dynamic-threshold", DynamicThreshold),
                      ("lqd", LongestQueueDrop)):
        pol = make_policy(PolicySpec(name=name), capacity=16)
        assert isinstance(pol, cls)
        assert pol.capacity == 16
        assert pol.name == name


# --------------------------------------------------------------- taildrop

def test_taildrop_accepts_until_full_then_drops():
    pol = TailDrop(capacity=3)
    for _ in range(3):
        assert pol.admit(0, 64).action == "accept"
        pol.note_enqueue(0, 64)
    d = pol.admit(0, 64)
    assert d.action == "drop" and "full" in d.reason


def test_taildrop_per_queue_limit():
    pol = TailDrop(capacity=10, per_queue_limit=2)
    pol.note_enqueue(0, 64)
    pol.note_enqueue(0, 64)
    assert pol.admit(0, 64).action == "drop"
    assert pol.admit(1, 64).action == "accept"


# -------------------------------------------------------------------- red

def test_red_drop_probability_monotone_in_average():
    """Satellite invariant: the RED curve is monotone non-decreasing."""
    pol = RandomEarlyDetection(capacity=100)
    grid = [i * 0.5 for i in range(0, 220)]
    probs = [pol.drop_probability(x) for x in grid]
    assert probs == sorted(probs)
    assert probs[0] == 0.0 and probs[-1] == 1.0


def test_red_below_min_always_accepts():
    pol = RandomEarlyDetection(capacity=100, min_frac=0.5)
    for _ in range(10):
        assert pol.admit(0, 64).action == "accept"
        pol.note_enqueue(0, 64)


def test_red_full_buffer_always_drops():
    pol = RandomEarlyDetection(capacity=4)
    for _ in range(4):
        pol.note_enqueue(0, 64)
    assert pol.admit(0, 64).action == "drop"


def test_red_is_deterministic_per_seed():
    def run(seed):
        pol = RandomEarlyDetection(capacity=8, min_frac=0.1, max_frac=0.9,
                                   max_p=0.5, seed=seed)
        verdicts = []
        for _ in range(50):
            d = pol.admit(0, 64)
            verdicts.append(d.action)
            if d.action == "accept" and pol.total_segments < 8:
                pol.note_enqueue(0, 64)
        return verdicts

    assert run(7) == run(7)
    assert run(7) != run(8)  # astronomically unlikely to collide


# -------------------------------------------------------- dynamic threshold

def test_dynamic_threshold_respects_alpha_bound():
    """Satellite invariant: accept iff len(q) < alpha * free."""
    pol = DynamicThreshold(capacity=16, alpha=0.5)
    accepted = 0
    while True:
        free = pol.free_segments
        qlen = pol.queue_length(0)
        d = pol.admit(0, 64)
        if d.action != "accept":
            assert qlen >= pol.alpha * free or free == 0
            break
        assert qlen < pol.alpha * free
        pol.note_enqueue(0, 64)
        accepted += 1
    # a lone queue converges to alpha/(1+alpha) of the buffer
    assert accepted == pytest.approx(16 * 0.5 / 1.5, abs=1)


def test_dynamic_threshold_isolates_queues():
    """A hog queue must not lock out a newcomer."""
    pol = DynamicThreshold(capacity=32, alpha=1.0)
    while pol.admit(0, 64).action == "accept":
        pol.note_enqueue(0, 64)
    assert pol.admit(1, 64).action == "accept"  # newcomer still admitted


# -------------------------------------------------------------------- lqd

def test_lqd_accepts_while_space_remains():
    pol = LongestQueueDrop(capacity=2)
    assert pol.admit(0, 64).action == "accept"
    pol.note_enqueue(0, 64)
    assert pol.admit(0, 64).action == "accept"


def test_lqd_pushes_out_longest_queue():
    pol = LongestQueueDrop(capacity=6)
    for _ in range(4):
        pol.note_enqueue(0, 64)
    for _ in range(2):
        pol.note_enqueue(1, 64)
    d = pol.admit(2, 64)
    assert d.action == "pushout" and d.victim == 0


def test_lqd_drops_arrival_on_longest_queue():
    pol = LongestQueueDrop(capacity=4)
    for _ in range(4):
        pol.note_enqueue(0, 64)
    assert pol.admit(0, 64).action == "drop"


def test_lqd_honors_exclusions_and_tie_break():
    pol = LongestQueueDrop(capacity=6)
    for _ in range(3):
        pol.note_enqueue(0, 64)
        pol.note_enqueue(1, 64)
    # tie between 0 and 1: lowest id wins deterministically
    assert pol.admit(2, 64).victim == 0
    # excluded victims are skipped
    assert pol.admit(2, 64, exclude=frozenset({0})).victim == 1
    d = pol.admit(2, 64, exclude=frozenset({0, 1}))
    assert d.action == "drop" and "victim" in d.reason


# ------------------------------------------------------- stats + records

def test_stats_and_records_accounting():
    pol = TailDrop(capacity=2, keep_records=True)
    pol.record_accept(0, 64)
    pol.note_enqueue(0, 64)
    pol.record_drop(1, 40, "buffer full")
    pol.record_pushout(0, 1, 64, "test")
    s = pol.stats
    assert s.offered_segments == 2 and s.offered_bytes == 104
    assert s.accepted_segments == 1 and s.dropped_segments == 1
    assert s.pushed_out_segments == 1 and s.pushed_out_bytes == 64
    assert s.drop_rate == 0.5
    assert [r.kind for r in s.records] == ["drop", "pushout"]
    assert s.records[0].nbytes == 40 and s.records[1].queue == 0
    # push-out released the occupancy it evicted
    assert pol.total_segments == 0


def test_records_not_kept_by_default():
    pol = TailDrop(capacity=1)
    pol.record_drop(0, 64, "x")
    assert pol.stats.records == []
    assert pol.stats.dropped_segments == 1


def test_occupancy_move_transfers_between_queues():
    pol = TailDrop(capacity=8)
    pol.note_enqueue(0, 128, segments=2)
    pol.note_move(0, 1, 128, 2)
    assert pol.queue_length(0) == 0 and pol.queue_length(1) == 2
    assert pol.total_segments == 2 and pol.total_bytes == 128
