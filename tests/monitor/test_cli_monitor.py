"""Monitoring through the CLI end to end: a journaled fault-injected
sweep, then watch / sweep-status / report over its journal."""

import json
import os

import pytest

from repro.analysis.cli import main
from repro.checkpoint.faults import write_plan
from repro.monitor.events import read_events, validate_event_dict
from repro.monitor.metrics import parse_prometheus_text, validate_metrics_dict
from repro.monitor.resources import validate_resources_dict


@pytest.fixture(scope="module")
def journal(tmp_path_factory):
    """One fault-injected, resource-profiled ``sweep all`` journal
    shared by every test in the module."""
    root = tmp_path_factory.mktemp("monitor-cli")
    journal_dir = str(root / "journal")
    plan = str(root / "faults.json")
    write_plan(plan, kill={"sweep-npu-rate-clock": 1})
    rc = main(["sweep", "all", "--fast", "--quiet", "--jobs", "2",
               "--retries", "2", "--backoff", "0",
               "--fault-plan", plan, "--journal", journal_dir,
               "--resources", "--json", str(root / "sweep.json")])
    assert rc == 0
    return journal_dir


def test_sweep_event_log_is_schema_valid(journal):
    path = os.path.join(journal, "events.jsonl")
    events = read_events(path, strict=True)
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            assert validate_event_dict(json.loads(line)) == []
    assert [(e.kind, e.action) for e in events[:1]] == [("sweep", "start")]
    assert events[-1].extra["failed"] == 0
    # the injected kill shows up as a retry with its reason
    retries = [e for e in events
               if (e.kind, e.action) == ("task", "retry")]
    assert retries and retries[0].name == "sweep-npu-rate-clock"
    assert "signal" in retries[0].extra["reason"]


def test_watch_once_renders_every_terminal_state(journal, capsys):
    assert main(["watch", "--once", journal]) == 0
    out = capsys.readouterr().out
    for name in ("sweep-ddr-loss-banks", "sweep-ixp-cycles-closed-form",
                 "sweep-ixp-rate-queues", "sweep-mms-delay-load",
                 "sweep-npu-rate-clock"):
        assert name in out
    assert "5 done" in out
    assert "queued" not in out and "running" not in out


def test_watch_rejects_an_unmonitored_directory(tmp_path, capsys):
    assert main(["watch", "--once", str(tmp_path)]) == 2
    assert "not a monitored journal" in capsys.readouterr().err


def test_sweep_status_json_and_prometheus(journal, tmp_path, capsys):
    doc_path = str(tmp_path / "status.json")
    assert main(["sweep-status", journal, "--json", doc_path]) == 0
    assert "cache-ready specs: 5" in capsys.readouterr().out
    with open(doc_path, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["counts"]["done"] == 5
    assert validate_metrics_dict(doc["metrics"]) == []

    assert main(["sweep-status", journal, "--prometheus", "-"]) == 0
    values = parse_prometheus_text(capsys.readouterr().out)
    assert values["repro_sweep_tasks_done"] == 5
    assert values["repro_sweep_retries_total"] == 1
    assert values["repro_sweep_cpu_seconds_total"] > 0


def test_report_renders_the_journal_timeline(journal, capsys):
    assert main(["report", journal]) == 0
    out = capsys.readouterr().out
    assert "sweep.start" in out and "sweep.finish" in out
    assert "sweep-npu-rate-clock" in out
    assert "attempt 2" in out            # the post-kill retry ran

    # a bare events file reports too
    assert main(["report", os.path.join(journal, "events.jsonl")]) == 0
    assert "task.finish" in capsys.readouterr().out


def test_run_resources_lands_in_the_result_document(tmp_path):
    path = str(tmp_path / "run.json")
    assert main(["run", "table4", "--fast", "--quiet", "--resources",
                 "--json", path]) == 0
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    profile = doc["runs"][0]["metrics"]["resources"]
    assert validate_resources_dict(profile) == []


def test_run_without_resources_stays_clean(tmp_path):
    path = str(tmp_path / "run.json")
    assert main(["run", "table4", "--fast", "--quiet",
                 "--json", path]) == 0
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert "resources" not in doc["runs"][0]["metrics"]
    assert "resources" not in doc


def test_checkpoint_run_streams_events(tmp_path):
    events_file = str(tmp_path / "ckpt-events.jsonl")
    assert main(["checkpoint-run", "latency-lqd-burst", "--fast",
                 "--quiet", "--checkpoint-every", "400000000",
                 "--checkpoint-dir", str(tmp_path / "ckpts"),
                 "--events", events_file]) == 0
    events = read_events(events_file, strict=True)
    assert events[0].kind == "checkpoint" and events[0].action == "start"
    assert any(e.action == "progress" for e in events)
    assert events[-1].action == "finish"
    assert events[-1].extra["count"] >= 1
