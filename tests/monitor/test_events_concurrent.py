"""EventSink under genuinely concurrent writers.

The sink's contract is that one ``os.write`` on an ``O_APPEND``
descriptor makes concurrent appends interleave at line granularity:
two processes hammering one ``events.jsonl`` must produce a file where
*every* line is an intact, schema-valid event and each writer's own
events appear in its emission order.  The stress test here runs two
real processes; the torn-line tests then check the reader's crash
contract (drop a torn final line, ``strict=True`` refuses).
"""

import json
import multiprocessing
import os

import pytest

from repro.monitor.events import EventSink, read_events, validate_event_dict

EVENTS_PER_WRITER = 300


def _writer(path: str, writer_id: int, count: int,
            barrier) -> None:
    """One stress-test writer process: emit ``count`` sequenced events
    as fast as possible (module-level for spawn-context safety)."""
    with EventSink(path) as sink:
        barrier.wait()  # maximize interleaving: start together
        for seq in range(count):
            sink.emit("task", "progress", f"w{writer_id}",
                      extra={"writer": writer_id, "seq": seq})


def test_two_process_writers_interleave_at_line_granularity(tmp_path):
    path = str(tmp_path / "events.jsonl")
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(2)
    procs = [ctx.Process(target=_writer,
                         args=(path, wid, EVENTS_PER_WRITER, barrier))
             for wid in (0, 1)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
        assert p.exitcode == 0

    # every single line is intact -- strict mode would raise otherwise
    events = read_events(path, strict=True)
    assert len(events) == 2 * EVENTS_PER_WRITER
    for event in events:
        assert validate_event_dict(event.to_dict()) == []

    # each writer's events arrive in its own emission order, complete
    for wid in (0, 1):
        seqs = [e.extra["seq"] for e in events
                if e.extra["writer"] == wid]
        assert seqs == list(range(EVENTS_PER_WRITER)), f"writer {wid}"

    # and the raw file really is one JSON document per line
    with open(path, encoding="utf-8") as fh:
        raw_lines = fh.read().splitlines()
    assert len(raw_lines) == 2 * EVENTS_PER_WRITER
    for line in raw_lines:
        json.loads(line)


def test_reader_recovers_every_intact_line_around_a_torn_tail(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventSink(path) as sink:
        for seq in range(5):
            sink.emit("task", "progress", "w0", extra={"seq": seq})
    # a writer dies mid-append: the final line is deliberately torn
    with open(path, "r+", encoding="utf-8") as fh:
        text = fh.read()
        fh.seek(0)
        fh.truncate()
        fh.write(text[:-25])  # chop through the last record
    events = read_events(path)
    assert [e.extra["seq"] for e in events] == [0, 1, 2, 3]


def test_strict_refuses_a_torn_final_line(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventSink(path) as sink:
        sink.emit("task", "start", "w0")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": 1, "kind": "task", "act')  # torn append
    assert len(read_events(path)) == 1  # tolerant mode drops it
    with pytest.raises(ValueError, match="invalid event line"):
        read_events(path, strict=True)


def test_concurrent_writers_then_torn_tail_end_to_end(tmp_path):
    """The full crash story: two processes interleave, then the file
    gains a torn tail -- the reader keeps every intact line from both
    writers and only strict mode complains."""
    path = str(tmp_path / "events.jsonl")
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(2)
    procs = [ctx.Process(target=_writer, args=(path, wid, 50, barrier))
             for wid in (0, 1)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
        assert p.exitcode == 0
    with open(path, "ab") as fh:
        fh.write(b'{"schema": 1, "kind": "ta')
    events = read_events(path)
    assert len(events) == 100
    with pytest.raises(ValueError, match="invalid event line"):
        read_events(path, strict=True)
