"""Resource profiling: rusage deltas, strides, schema validation."""

import pytest

from repro.monitor.resources import (
    RESOURCES_SCHEMA,
    ResourceProfiler,
    validate_resources_dict,
)


def _burn(n: int = 50_000) -> int:
    return sum(i * i for i in range(n))


def test_profile_reports_the_delta_fields():
    profiler = ResourceProfiler()
    _burn()
    profile = profiler.profile()
    assert profile["schema"] == RESOURCES_SCHEMA
    for key in ("cpu_user_s", "cpu_sys_s", "cpu_s", "max_rss_kb",
                "wall_s"):
        assert key in profile
        assert profile[key] >= 0
    assert profile["cpu_s"] == pytest.approx(
        profile["cpu_user_s"] + profile["cpu_sys_s"], abs=1e-6)
    assert profile["max_rss_kb"] > 0      # the high-water mark, not a delta
    assert "strides" not in profile       # none recorded
    assert validate_resources_dict(profile) == []


def test_strides_are_cumulative_and_labelled():
    profiler = ResourceProfiler()
    _burn()
    first = profiler.tick("warmup")
    _burn()
    second = profiler.tick("volley-2")
    profile = profiler.profile()
    assert [s["at"] for s in profile["strides"]] == ["warmup", "volley-2"]
    assert first["wall_s"] <= second["wall_s"] <= profile["wall_s"]
    assert first["cpu_s"] <= second["cpu_s"]
    assert validate_resources_dict(profile) == []


def test_validate_names_missing_and_negative_fields():
    problems = "; ".join(validate_resources_dict(
        {"schema": 0, "cpu_user_s": -1.0, "cpu_s": "lots",
         "strides": "nope"}))
    for fragment in ("schema", "cpu_user_s", "cpu_sys_s", "cpu_s",
                     "max_rss_kb", "wall_s", "strides"):
        assert fragment in problems
    assert validate_resources_dict(42) == ["resources is not an object"]


def test_validate_flags_malformed_stride_entries():
    profile = ResourceProfiler().profile()
    profile["strides"] = [{"cpu_user_s": 0.0}]
    assert any("strides[0]" in p
               for p in validate_resources_dict(profile))
