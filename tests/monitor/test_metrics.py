"""The metrics registry: instruments, exposition, strict parsing."""

import pytest

from repro.monitor.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Rate,
    parse_prometheus_text,
    validate_metrics_dict,
)

# -------------------------------------------------------- instruments


def test_counter_accumulates_and_rejects_decrease():
    c = Counter("jobs_total", "jobs seen")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1)


def test_gauge_sets_freely():
    g = Gauge("queue_depth")
    g.set(7)
    g.set(2.5)
    assert g.value == 2.5


def test_invalid_metric_name_rejected():
    with pytest.raises(ValueError, match="invalid metric name"):
        Counter("7-bad-name")


def test_rate_is_windowed_and_clock_free():
    r = Rate("events_per_second", window_s=10.0)
    for t in (100.0, 101.0, 102.0, 103.0):
        r.record(t)
    # 4 events over the 3s span between first and last hit
    assert r.value == pytest.approx(4 / 3, rel=1e-6)
    r.observe(111.5)   # hits at 100 and 101 age out of the 10s window
    assert r.value == pytest.approx(2 / 9.5, rel=1e-4)
    r.observe(200.0)   # everything aged out
    assert r.value == 0.0


def test_rate_replay_is_deterministic():
    """Same recorded timestamps -> same value, every time (no ambient
    clock reads)."""
    def build():
        r = Rate("r", window_s=60.0)
        for t in (5.0, 6.0, 9.0):
            r.record(t)
        return r.value
    assert build() == build()


def test_rate_rejects_nonpositive_window():
    with pytest.raises(ValueError, match="window"):
        Rate("r", window_s=0)


# ----------------------------------------------------------- registry


def test_registry_get_or_create_and_type_conflict():
    reg = MetricsRegistry()
    c = reg.counter("n", "help")
    assert reg.counter("n") is c
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("n")
    assert isinstance(reg.rate("r", window_s=5.0), Rate)


def test_json_exposition_round_trips_the_validator():
    reg = MetricsRegistry()
    reg.counter("a_total", "things").inc(3)
    reg.gauge("b", "level").set(1.5)
    reg.rate("c_rate").record(10.0)
    doc = reg.to_dict()
    assert validate_metrics_dict(doc) == []
    assert doc["metrics"]["a_total"] == {"type": "counter",
                                         "help": "things", "value": 3}
    assert doc["metrics"]["c_rate"]["type"] == "gauge"


def test_validate_metrics_dict_names_problems():
    problems = "; ".join(validate_metrics_dict(
        {"schema": 0,
         "metrics": {"bad name": {"type": "histogram", "value": "x"},
                     "ok": "not-an-object"}}))
    for fragment in ("schema", "bad name", "type", "value", "ok"):
        assert fragment in problems


# --------------------------------------------------------- prometheus


def test_prometheus_exposition_parses_back_exactly():
    reg = MetricsRegistry()
    reg.counter("repro_tasks_total", "tasks seen").inc(12)
    reg.gauge("repro_rss_kb", "rss high water").set(19828)
    reg.rate("repro_eps", "event rate").record(1.0)
    reg.rate("repro_eps").record(4.0)
    text = reg.to_prometheus()
    assert "# HELP repro_tasks_total tasks seen" in text
    assert "# TYPE repro_tasks_total counter" in text
    assert "\nrepro_tasks_total 12\n" in text   # ints render undecorated
    values = parse_prometheus_text(text)
    assert values["repro_tasks_total"] == 12
    assert values["repro_rss_kb"] == 19828
    assert values["repro_eps"] == pytest.approx(2 / 3, rel=1e-4)


@pytest.mark.parametrize("text, fragment", [
    ("# TYPE a histogram\na 1\n", "malformed TYPE"),
    ("a 1\n", "no preceding TYPE"),
    ("# TYPE a counter\na one\n", "non-numeric"),
    ("# COMMENT nope\n", "unknown comment"),
    ("# TYPE a counter\na 1 2 3\n", "malformed sample"),
])
def test_parser_is_strict(text, fragment):
    with pytest.raises(ValueError, match=fragment):
        parse_prometheus_text(text)


def test_parser_accepts_blank_lines():
    assert parse_prometheus_text("\n# TYPE a gauge\n\na 2.5\n") \
        == {"a": 2.5}
