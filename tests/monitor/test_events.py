"""The structured event log: round-trip, validation, sink atomicity,
torn-line tolerance, and the SweepLog heartbeat unification."""

import json
import os

import pytest

from repro.monitor.events import (
    EVENT_ACTIONS,
    EVENT_KINDS,
    EVENT_SCHEMA,
    Event,
    EventSink,
    SweepLog,
    events_path,
    read_events,
    validate_event_dict,
)

# ---------------------------------------------------------- the Event


def test_round_trip_is_exact():
    events = [
        Event(kind="run", action="start", name="table5",
              elapsed_s=0.0, t_wall=100.5),
        Event(kind="task", action="retry", name="t1", elapsed_s=1.25,
              t_wall=101.0, attempt=2,
              extra={"reason": "worker killed by signal SIGKILL"}),
        Event(kind="sweep", action="finish", name="sweep",
              elapsed_s=9.5, t_wall=110.0,
              extra={"done": 5, "failed": 0}),
        Event(kind="checkpoint", action="progress", name="overload",
              elapsed_s=2.0, t_wall=102.0,
              extra={"at_ps": 2_000_000, "count": 1}),
        Event(kind="bench", action="finish", name="bench_monitor",
              elapsed_s=3.0, t_wall=103.0, scenario="table5",
              engine="fast", seed=7),
    ]
    for event in events:
        assert Event.from_dict(event.to_dict()) == event


def test_to_dict_omits_absent_optionals():
    d = Event(kind="run", action="start", name="x",
              elapsed_s=0.0, t_wall=1.0).to_dict()
    assert d == {"schema": EVENT_SCHEMA, "kind": "run",
                 "action": "start", "name": "x", "elapsed_s": 0.0,
                 "t_wall": 1.0}
    assert "attempt" not in d and "extra" not in d


def test_unknown_kind_and_action_rejected_at_construction():
    with pytest.raises(ValueError, match="kind"):
        Event(kind="nope", action="start", name="x",
              elapsed_s=0.0, t_wall=0.0)
    with pytest.raises(ValueError, match="action"):
        Event(kind="run", action="explode", name="x",
              elapsed_s=0.0, t_wall=0.0)


def test_validate_event_dict_names_every_problem():
    good = Event(kind="task", action="start", name="t0",
                 elapsed_s=1.0, t_wall=2.0, attempt=1).to_dict()
    assert validate_event_dict(good) == []

    bad = {"schema": 99, "kind": "martian", "action": "explode",
           "name": 7, "elapsed_s": -1.0, "attempt": "two",
           "extra": "not-an-object"}
    problems = "; ".join(validate_event_dict(bad))
    for fragment in ("schema", "kind", "action", "name", "elapsed_s",
                     "t_wall", "attempt", "extra"):
        assert fragment in problems

    assert validate_event_dict("not a mapping") \
        == ["event is not an object"]


def test_from_dict_rejects_invalid_documents():
    with pytest.raises(ValueError, match="invalid event document"):
        Event.from_dict({"kind": "run"})


def test_kind_and_action_vocabularies_are_frozen():
    assert EVENT_KINDS == ("run", "sweep", "task", "checkpoint", "bench")
    assert EVENT_ACTIONS == ("start", "progress", "retry", "finish",
                             "fail")


# ----------------------------------------------------------- the sink


def test_sink_appends_one_line_per_event(tmp_path):
    path = events_path(str(tmp_path))
    with EventSink(path) as sink:
        first = sink.emit("run", "start", "table5", scenario="table5",
                          engine="fast", seed=3)
        sink.emit("run", "finish", "table5",
                  extra={"wall_clock_s": 0.25})
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["action"] == "start"

    events = read_events(path)
    assert [e.action for e in events] == ["start", "finish"]
    assert events[0] == first
    assert events[1].elapsed_s >= events[0].elapsed_s >= 0.0


def test_sink_appends_across_instances(tmp_path):
    """Two sinks on one path (the pool parent + a worker) append,
    never truncate."""
    path = str(tmp_path / "events.jsonl")
    with EventSink(path) as sink:
        sink.emit("sweep", "start", "sweep")
    with EventSink(path) as sink:
        sink.emit("sweep", "finish", "sweep")
    assert [e.action for e in read_events(path)] == ["start", "finish"]


def test_closed_sink_refuses_appends(tmp_path):
    sink = EventSink(str(tmp_path / "events.jsonl"))
    sink.close()
    with pytest.raises(ValueError, match="closed"):
        sink.emit("run", "start", "x")
    sink.close()  # idempotent


def test_torn_final_line_is_dropped(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventSink(path) as sink:
        sink.emit("run", "start", "a")
        sink.emit("run", "finish", "a")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": 1, "kind": "run", "act')   # writer died here
    events = read_events(path)
    assert [e.action for e in events] == ["start", "finish"]
    with pytest.raises(ValueError, match="invalid event line"):
        read_events(path, strict=True)


def test_torn_middle_line_raises(tmp_path):
    path = str(tmp_path / "events.jsonl")
    good = Event(kind="run", action="start", name="a",
                 elapsed_s=0.0, t_wall=1.0)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"torn\n')
        fh.write(json.dumps(good.to_dict()) + "\n")
    with pytest.raises(ValueError, match=":1: invalid event line"):
        read_events(path)


def test_events_path_is_canonical(tmp_path):
    assert events_path(str(tmp_path)) \
        == os.path.join(str(tmp_path), "events.jsonl")


# ------------------------------------------------------- the SweepLog


def test_sweeplog_writes_events_and_legacy_heartbeats(tmp_path):
    """Satellite contract: heartbeat documents come from the same
    records as the event log -- same format as the pre-monitor writer,
    so existing journal tooling keeps working."""
    hb = [str(tmp_path / "t0.heartbeat.json"),
          str(tmp_path / "t1.heartbeat.json")]
    sink = EventSink(events_path(str(tmp_path)))
    log = SweepLog(sink, ["t0", "t 1"], heartbeat_paths=hb)
    log.sweep("start", extra={"tasks": 2, "jobs": 1,
                              "names": ["t0", "t 1"]})
    log.task(0, "start", 1)
    log.task(1, "start", 1)
    log.task(0, "finish", 1)
    log.task(1, "retry", 1, extra={"reason": "boom"})
    log.task(1, "start", 2)
    log.task(1, "finish", 2)
    log.sweep("finish", extra={"done": 2, "failed": 0})
    sink.close()

    events = read_events(events_path(str(tmp_path)))
    assert [(e.kind, e.action) for e in events] == [
        ("sweep", "start"), ("task", "start"), ("task", "start"),
        ("task", "finish"), ("task", "retry"), ("task", "start"),
        ("task", "finish"), ("sweep", "finish")]
    assert events[4].extra == {"reason": "boom"}
    assert events[4].attempt == 1

    with open(hb[1], encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["schema"] == 1 and doc["name"] == "t 1"
    assert [(e["event"], e["attempt"]) for e in doc["events"]] \
        == [("start", 1), ("retry", 1), ("start", 2), ("finish", 2)]
    elapsed = [e["elapsed_s"] for e in doc["events"]]
    assert elapsed == sorted(elapsed)


def test_sweeplog_without_sink_is_a_noop(tmp_path):
    log = SweepLog(None, ["t0"],
                   heartbeat_paths=[str(tmp_path / "t0.heartbeat.json")])
    log.sweep("start")
    log.task(0, "start", 1)
    log.task(0, "finish", 1)
    assert list(tmp_path.iterdir()) == []
