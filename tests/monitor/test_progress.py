"""Sweep progress folding: states, ETA, stragglers, metrics, renders."""

import json

import pytest

from repro.monitor.events import Event, EventSink, events_path
from repro.monitor.metrics import parse_prometheus_text
from repro.monitor.progress import (
    build_registry,
    load_sweep,
    render_status,
    render_timeline,
    render_watch,
    safe_name,
    status_from_events,
)


def _event(kind, action, name, elapsed, t_wall, attempt=None,
           extra=None):
    return Event(kind=kind, action=action, name=name,
                 elapsed_s=elapsed, t_wall=t_wall, attempt=attempt,
                 extra=dict(extra or {}))


def _write(journal, events):
    with EventSink(events_path(str(journal))) as sink:
        for event in events:
            sink.append(event)


def _result_doc(journal, name, scenario="s", seed=1):
    (journal / (safe_name(name) + ".json")).write_text(json.dumps(
        {"scenario": scenario, "engine": "fast", "seed": seed,
         "budget": "fast", "metrics": {}}))


PROFILE = {"schema": 1, "cpu_user_s": 1.0, "cpu_sys_s": 0.5,
           "cpu_s": 1.5, "max_rss_kb": 2048, "wall_s": 2.0}


def test_terminal_states_attempts_and_walls(tmp_path):
    t0 = 1000.0
    _write(tmp_path, [
        _event("sweep", "start", "sweep", 0.0, t0,
               extra={"tasks": 3, "jobs": 2,
                      "names": ["ok", "flaky", "doomed"],
                      "skipped_from_journal": 0}),
        _event("task", "start", "ok", 0.1, t0 + 0.1, attempt=1),
        _event("task", "start", "flaky", 0.1, t0 + 0.1, attempt=1),
        _event("task", "finish", "ok", 2.1, t0 + 2.1, attempt=1,
               extra={"resources": PROFILE}),
        _event("task", "retry", "flaky", 1.1, t0 + 1.1, attempt=1,
               extra={"reason": "worker killed by signal SIGKILL"}),
        _event("task", "start", "doomed", 1.2, t0 + 1.2, attempt=1),
        _event("task", "fail", "doomed", 2.2, t0 + 2.2, attempt=1,
               extra={"reason": "ValueError: boom"}),
        _event("task", "start", "flaky", 2.3, t0 + 2.3, attempt=2),
        _event("task", "finish", "flaky", 4.3, t0 + 4.3, attempt=2),
        _event("sweep", "finish", "sweep", 4.4, t0 + 4.4,
               extra={"done": 2, "failed": 1}),
    ])
    _result_doc(tmp_path, "ok")
    _result_doc(tmp_path, "flaky", seed=2)

    status = load_sweep(str(tmp_path), now_wall=t0 + 5.0)
    assert status.source == "events"
    assert status.jobs == 2 and status.total == 3
    assert status.finished
    by_name = {t.name: t for t in status.tasks}

    ok = by_name["ok"]
    assert (ok.state, ok.attempts) == ("done", 1)
    assert ok.wall_s == pytest.approx(2.0)
    assert ok.cpu_s == 1.5 and ok.max_rss_kb == 2048

    flaky = by_name["flaky"]
    assert (flaky.state, flaky.attempts) == ("done", 2)
    assert flaky.wall_s == pytest.approx(3.0)   # 1.0s + 2.0s attempts
    assert flaky.retries == [(1, "worker killed by signal SIGKILL")]

    doomed = by_name["doomed"]
    assert (doomed.state, doomed.attempts) == ("failed", 1)
    assert doomed.reason == "ValueError: boom"

    assert status.counts() == {"queued": 0, "running": 0,
                               "retrying": 0, "done": 2, "failed": 1}
    # two distinct (scenario, engine, seed, budget) specs journaled
    assert status.cache_ready_specs == 2
    assert status.eta_s() is None   # everything terminal


def test_live_states_eta_and_stragglers(tmp_path):
    t0 = 2000.0
    _write(tmp_path, [
        _event("sweep", "start", "sweep", 0.0, t0,
               extra={"tasks": 5, "jobs": 1,
                      "names": ["d1", "d2", "slow", "waiting", "again"]}),
        _event("task", "start", "d1", 0.0, t0, attempt=1),
        _event("task", "finish", "d1", 1.0, t0 + 1.0, attempt=1),
        _event("task", "start", "d2", 1.0, t0 + 1.0, attempt=1),
        _event("task", "finish", "d2", 2.0, t0 + 2.0, attempt=1),
        _event("task", "start", "slow", 2.0, t0 + 2.0, attempt=1),
        _event("task", "retry", "again", 2.5, t0 + 2.5, attempt=1,
               extra={"reason": "timeout after 1s"}),
    ])
    status = load_sweep(str(tmp_path), now_wall=t0 + 8.0)
    by_name = {t.name: t for t in status.tasks}
    assert by_name["waiting"].state == "queued"
    assert by_name["again"].state == "retrying"
    slow = by_name["slow"]
    assert slow.state == "running"
    assert slow.wall_s == pytest.approx(6.0)   # live: now - start
    # median done wall is 1.0s; 6s > 2x median -> straggler
    assert slow.straggler
    assert not status.finished
    # 2 pending (queued+retrying) x 1.0s mean + 0 remaining for slow
    assert status.eta_s() == pytest.approx(2.0)


def test_result_documents_override_lost_events(tmp_path):
    """A finish event lost to a crash must not hide a journaled result
    (and an error document marks the task failed)."""
    t0 = 3000.0
    _write(tmp_path, [
        _event("sweep", "start", "sweep", 0.0, t0,
               extra={"tasks": 2, "jobs": 1, "names": ["a", "b"]}),
        _event("task", "start", "a", 0.0, t0, attempt=1),
        _event("task", "start", "b", 0.0, t0, attempt=1),
    ])
    _result_doc(tmp_path, "a")
    (tmp_path / (safe_name("b") + ".json")).write_text(
        json.dumps({"__error__": "ValueError: boom"}))
    status = load_sweep(str(tmp_path), now_wall=t0 + 1.0)
    by_name = {t.name: t for t in status.tasks}
    assert by_name["a"].state == "done"
    assert by_name["b"].state == "failed"
    assert by_name["b"].reason == "ValueError: boom"
    assert status.cache_ready_specs == 1


def test_heartbeat_fallback_for_pre_event_journals(tmp_path):
    (tmp_path / "t0.heartbeat.json").write_text(json.dumps(
        {"schema": 1, "name": "t0", "events": [
            {"event": "start", "attempt": 1, "elapsed_s": 0.1},
            {"event": "retry", "attempt": 1, "elapsed_s": 1.1},
            {"event": "start", "attempt": 2, "elapsed_s": 1.3},
            {"event": "finish", "attempt": 2, "elapsed_s": 2.3}]}))
    (tmp_path / "t1.heartbeat.json").write_text(json.dumps(
        {"schema": 1, "name": "t1", "events": [
            {"event": "start", "attempt": 1, "elapsed_s": 0.2}]}))
    status = load_sweep(str(tmp_path), now_wall=0.0)
    assert status.source == "heartbeats"
    by_name = {t.name: t for t in status.tasks}
    assert (by_name["t0"].state, by_name["t0"].attempts) == ("done", 2)
    assert by_name["t0"].wall_s == pytest.approx(2.0)
    assert by_name["t1"].state == "running"


def test_empty_directory_is_rejected(tmp_path):
    with pytest.raises(ValueError, match="not a monitored journal"):
        load_sweep(str(tmp_path))
    with pytest.raises(ValueError, match="not a directory"):
        load_sweep(str(tmp_path / "absent"))


def test_status_from_bare_events_file(tmp_path):
    path = str(tmp_path / "log.jsonl")
    with EventSink(path) as sink:
        sink.append(_event("task", "start", "x", 0.0, 10.0, attempt=1))
        sink.append(_event("task", "finish", "x", 1.0, 11.0, attempt=1))
    status = status_from_events(path, now_wall=12.0)
    assert [t.state for t in status.tasks] == ["done"]


def test_registry_aggregates_the_sweep(tmp_path):
    t0 = 4000.0
    _write(tmp_path, [
        _event("sweep", "start", "sweep", 0.0, t0,
               extra={"tasks": 2, "jobs": 2, "names": ["a", "b"]}),
        _event("task", "start", "a", 0.0, t0, attempt=1),
        _event("task", "retry", "a", 1.0, t0 + 1.0, attempt=1,
               extra={"reason": "boom"}),
        _event("task", "start", "a", 1.1, t0 + 1.1, attempt=2),
        _event("task", "finish", "a", 2.0, t0 + 2.0, attempt=2,
               extra={"resources": PROFILE}),
        _event("task", "start", "b", 0.0, t0, attempt=1),
    ])
    _result_doc(tmp_path, "a")
    status = load_sweep(str(tmp_path), now_wall=t0 + 3.0)
    registry = build_registry(status)
    values = parse_prometheus_text(registry.to_prometheus())
    assert values["repro_sweep_tasks_total"] == 2
    assert values["repro_sweep_tasks_done"] == 1
    assert values["repro_sweep_tasks_running"] == 1
    assert values["repro_sweep_retries_total"] == 1
    assert values["repro_sweep_events_total"] == 6
    assert values["repro_sweep_cache_ready_specs"] == 1
    assert values["repro_sweep_cpu_seconds_total"] == pytest.approx(1.5)
    assert values["repro_sweep_max_rss_kb"] == 2048
    assert values["repro_sweep_events_per_second"] > 0


def test_renders_cover_every_terminal_state(tmp_path):
    t0 = 5000.0
    _write(tmp_path, [
        _event("sweep", "start", "sweep", 0.0, t0,
               extra={"tasks": 2, "jobs": 1, "names": ["good", "bad"]}),
        _event("task", "start", "good", 0.0, t0, attempt=1),
        _event("task", "finish", "good", 1.0, t0 + 1.0, attempt=1,
               extra={"resources": PROFILE}),
        _event("task", "start", "bad", 1.0, t0 + 1.0, attempt=1),
        _event("task", "fail", "bad", 2.0, t0 + 2.0, attempt=1,
               extra={"reason": "ValueError: boom"}),
        _event("sweep", "fail", "sweep", 2.1, t0 + 2.1,
               extra={"done": 1, "failed": 1}),
    ])
    _result_doc(tmp_path, "good")
    status = load_sweep(str(tmp_path), now_wall=t0 + 3.0)

    watch = render_watch(status)
    assert "good" in watch and "done" in watch
    assert "bad" in watch and "failed" in watch
    assert "1 done, 1 failed" in watch

    summary = render_status(status)
    assert "ValueError: boom" in summary
    assert "cache-ready specs: 1" in summary

    timeline = render_timeline(status)
    assert "sweep.start" in timeline and "task.fail" in timeline
    assert "attempts=1" in timeline
