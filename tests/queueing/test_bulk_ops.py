"""Bulk queueing operations: identity against their per-word loops.

``FreeList.reserve`` and ``PacketQueueManager.bulk_prefill`` exist only
for speed; these tests pin the contract that makes them safe -- state
and access counters equal to the sequential operations they replace,
bit for bit.
"""

import pytest

from repro.policies import PolicySpec, make_policy
from repro.queueing import PacketQueueManager
from repro.queueing.freelist import NIL, FreeList, OutOfBuffersError
from repro.queueing.pointer_memory import PointerMemory


def fresh_mem(slots=64, anchors=False):
    mem = PointerMemory()
    mem.add_region("next", slots)
    if anchors:
        mem.add_region("globals", 2)
    mem.freeze()
    fl = FreeList(mem, slots, anchors_in_memory=anchors)
    fl.initialize()
    return mem, fl


def state(mem, fl):
    return (dict(mem._sram._words), dict(mem.reads_by_region),
            dict(mem.writes_by_region),
            (mem._sram.read_count, mem._sram.write_count),
            fl.free_count, fl._reg_head, fl._reg_tail)


@pytest.mark.parametrize("anchors", [False, True])
@pytest.mark.parametrize("count", [1, 7, 64])
def test_reserve_equals_pop_loop(anchors, count):
    mem_a, fl_a = fresh_mem(anchors=anchors)
    mem_b, fl_b = fresh_mem(anchors=anchors)
    popped = [fl_a.pop() for _ in range(count)]
    reserved = fl_b.reserve(count)
    assert popped == reserved
    assert state(mem_a, fl_a) == state(mem_b, fl_b)


def test_reserve_equals_pop_loop_after_churn():
    """A recycled (non-virgin) chain takes the generic walk."""
    mem_a, fl_a = fresh_mem()
    mem_b, fl_b = fresh_mem()
    for fl in (fl_a, fl_b):
        taken = [fl.pop() for _ in range(10)]
        for s in reversed(taken):
            fl.push(s)
    popped = [fl_a.pop() for _ in range(20)]
    assert popped == fl_b.reserve(20)
    assert state(mem_a, fl_a) == state(mem_b, fl_b)


def test_reserve_rejects_oversubscription_without_state_change():
    mem, fl = fresh_mem(slots=8)
    before = state(mem, fl)
    with pytest.raises(OutOfBuffersError):
        fl.reserve(9)
    assert state(mem, fl) == before


def test_reserve_drains_tail_anchor():
    _mem, fl = fresh_mem(slots=8)
    fl.reserve(8)
    assert fl.free_count == 0
    assert fl._reg_head == NIL and fl._reg_tail == NIL


# -------------------------------------------------------- bulk_prefill

def build_pqm(policy_name=None):
    policy = None
    if policy_name:
        policy = make_policy(PolicySpec(name=policy_name), capacity=512)
    return PacketQueueManager(num_flows=32, num_segments=512,
                              num_descriptors=256, policy=policy)


def pqm_state(pqm):
    mem = pqm.mem
    st = {
        "words": dict(mem._sram._words),
        "reads": dict(mem.reads_by_region),
        "writes": dict(mem.writes_by_region),
        "sram": (mem._sram.read_count, mem._sram.write_count),
        "free": (pqm.free_segments, pqm.free_descriptors),
        "heads": (pqm.seg_free._reg_head, pqm.seg_free._reg_tail,
                  pqm.desc_free._reg_head, pqm.desc_free._reg_tail),
        "qp": list(pqm._queued_packets),
        "qs": list(pqm._queued_segments),
        "shadow": dict(pqm._seg_shadow),
    }
    if pqm.policy is not None:
        st["policy"] = (dict(pqm.policy.queue_segments),
                        dict(pqm.policy.queue_bytes),
                        pqm.policy.total_segments, pqm.policy.total_bytes)
    return st


@pytest.mark.parametrize("policy_name", [None, "taildrop", "lqd"])
def test_bulk_prefill_equals_enqueue_loop(policy_name):
    a = build_pqm(policy_name)
    b = build_pqm(policy_name)
    flows = range(8)
    n_loop = 0
    for f in flows:
        for _ in range(5):
            a.enqueue_segment(f, eop=True, pid=-2, index=0)
            n_loop += 1
    assert b.bulk_prefill(flows, 5) == n_loop
    assert pqm_state(a) == pqm_state(b)


def test_bulk_prefill_multiseg_falls_back_to_loop():
    a = build_pqm()
    b = build_pqm()
    for f in range(4):
        for _p in range(2):
            for s in range(3):
                a.enqueue_segment(f, eop=(s == 2), pid=-2, index=s)
    assert b.bulk_prefill(range(4), 2, segments_per_packet=3) == 24
    assert pqm_state(a) == pqm_state(b)


def test_bulk_prefill_nonfresh_flow_falls_back():
    a = build_pqm()
    b = build_pqm()
    for pqm in (a, b):
        pqm.enqueue_segment(3, eop=True)
    for f in (3, 4):
        for _ in range(2):
            a.enqueue_segment(f, eop=True, pid=-2, index=0)
    assert b.bulk_prefill((3, 4), 2) == 4
    assert pqm_state(a) == pqm_state(b)


def test_bulk_prefill_then_operations_work():
    pqm = build_pqm()
    pqm.bulk_prefill(range(4), 3)
    info, _ = pqm.dequeue_segment(0)
    assert info.eop and info.length == 64 and info.pid == -2
    assert pqm.queued_packets(0) == 2
    pqm.move_packet(1, 2)
    assert pqm.queued_packets(2) == 4
    trace = pqm.delete_packet(2)
    assert trace
