"""Tests for the region-structured, traced pointer memory."""

import pytest

from repro.queueing import PointerMemory
from repro.queueing.pointer_memory import AccessRecord


def make():
    pm = PointerMemory()
    pm.add_region("next", 16)
    pm.add_region("qhead", 4)
    pm.freeze()
    return pm

def test_regions_are_disjoint():
    pm = PointerMemory()
    a = pm.add_region("a", 10)
    b = pm.add_region("b", 5)
    assert a.base == 0
    assert b.base == 10
    assert pm.total_words == 15

def test_read_write_roundtrip():
    pm = make()
    pm.write("next", 3, 99)
    assert pm.read("next", 3) == 99

def test_regions_do_not_alias():
    pm = make()
    pm.write("next", 0, 1)
    pm.write("qhead", 0, 2)
    assert pm.read("next", 0) == 1
    assert pm.read("qhead", 0) == 2

def test_counters_per_region():
    pm = make()
    pm.write("next", 0, 1)
    pm.read("next", 0)
    pm.read("qhead", 1)
    assert pm.writes_by_region["next"] == 1
    assert pm.reads_by_region["next"] == 1
    assert pm.reads_by_region["qhead"] == 1
    assert pm.total_accesses == 3
    pm.reset_counters()
    assert pm.total_accesses == 0

def test_trace_records_order_and_kind():
    pm = make()
    pm.start_trace()
    pm.write("next", 1, 5)
    pm.read("qhead", 0)
    trace = pm.end_trace()
    assert trace == [AccessRecord("W", "next", 1), AccessRecord("R", "qhead", 0)]

def test_accesses_outside_trace_not_recorded():
    pm = make()
    pm.write("next", 0, 1)
    pm.start_trace()
    pm.read("next", 0)
    trace = pm.end_trace()
    assert len(trace) == 1

def test_end_trace_without_start_raises():
    pm = make()
    with pytest.raises(RuntimeError):
        pm.end_trace()

def test_peek_is_uncounted_and_untraced():
    pm = make()
    pm.write("next", 2, 7)
    pm.reset_counters()
    pm.start_trace()
    assert pm.peek("next", 2) == 7
    assert pm.end_trace() == []
    assert pm.total_accesses == 0

def test_bounds_checked_per_region():
    pm = make()
    with pytest.raises(IndexError):
        pm.read("qhead", 4)
    with pytest.raises(IndexError):
        pm.write("next", 16, 0)

def test_layout_frozen_rules():
    pm = PointerMemory()
    pm.add_region("a", 4)
    with pytest.raises(RuntimeError):
        pm.read("a", 0)  # not frozen yet
    pm.freeze()
    with pytest.raises(RuntimeError):
        pm.add_region("b", 4)  # frozen
    with pytest.raises(RuntimeError):
        pm.freeze()  # double freeze

def test_duplicate_region_rejected():
    pm = PointerMemory()
    pm.add_region("a", 4)
    with pytest.raises(ValueError):
        pm.add_region("a", 4)

def test_empty_layout_rejected():
    pm = PointerMemory()
    with pytest.raises(RuntimeError):
        pm.freeze()

def test_zero_word_region_rejected():
    pm = PointerMemory()
    with pytest.raises(ValueError):
        pm.add_region("a", 0)
