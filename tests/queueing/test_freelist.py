"""Tests for free-list management."""

import pytest

from repro.queueing import FreeList, OutOfBuffersError, PointerMemory


def make(slots=8, anchors_in_memory=True, link_mask=None):
    pm = PointerMemory()
    pm.add_region("next", slots)
    pm.add_region("globals", 2)
    pm.freeze()
    fl = FreeList(pm, slots, anchors_in_memory=anchors_in_memory,
                  link_mask=link_mask)
    fl.initialize()
    pm.reset_counters()
    return pm, fl

def test_pop_returns_all_slots_once():
    _pm, fl = make(8)
    slots = [fl.pop() for _ in range(8)]
    assert sorted(slots) == list(range(8))
    assert fl.free_count == 0

def test_pop_empty_raises():
    _pm, fl = make(2)
    fl.pop()
    fl.pop()
    with pytest.raises(OutOfBuffersError):
        fl.pop()


def test_pop_empty_error_carries_occupancy_context():
    """Exhaustion must say how full the buffer is, not just 'empty'."""
    _pm, fl = make(3)
    for _ in range(3):
        fl.pop()
    with pytest.raises(OutOfBuffersError, match=r"3 of 3 slots in use") as ei:
        fl.pop()
    assert ei.value.slots_in_use == 3
    assert ei.value.num_slots == 3


def test_pop_empty_error_context_after_partial_release():
    _pm, fl = make(4)
    slots = [fl.pop() for _ in range(4)]
    fl.push(slots[0])
    fl.pop()
    with pytest.raises(OutOfBuffersError) as ei:
        fl.pop()
    assert ei.value.slots_in_use == 4 and ei.value.num_slots == 4


def test_push_recovers_from_exhaustion():
    """After the exhaustion error, a push makes pop usable again."""
    _pm, fl = make(2)
    a = fl.pop()
    fl.pop()
    with pytest.raises(OutOfBuffersError):
        fl.pop()
    fl.push(a)
    assert fl.pop() == a
    assert fl.free_count == 0


def test_push_chain_recovers_from_exhaustion():
    """The MMS delete-packet path: splice a chain back after running
    dry and keep allocating."""
    pm, fl = make(4, anchors_in_memory=False)
    slots = [fl.pop() for _ in range(4)]
    with pytest.raises(OutOfBuffersError):
        fl.pop()
    # hand-link slots[0] -> slots[1] -> slots[2] and splice the chain
    pm.write("next", slots[0], slots[1] + 1)
    pm.write("next", slots[1], slots[2] + 1)
    fl.push_chain(slots[0], slots[2], 3)
    assert fl.free_count == 3
    assert [fl.pop() for _ in range(3)] == slots[:3]
    with pytest.raises(OutOfBuffersError) as ei:
        fl.pop()
    assert ei.value.slots_in_use == 4

def test_push_pop_cycle_preserves_count():
    _pm, fl = make(4)
    a = fl.pop()
    b = fl.pop()
    fl.push(a)
    fl.push(b)
    assert fl.free_count == 4
    # all four still allocatable
    got = sorted(fl.pop() for _ in range(4))
    assert got == [0, 1, 2, 3]

def test_push_appends_at_tail_fifo_recycling():
    """Freed slots are reused last (tail append), not immediately."""
    _pm, fl = make(4)
    first = fl.pop()
    fl.push(first)
    # the other three slots come out before the recycled one
    order = [fl.pop() for _ in range(4)]
    assert order[-1] == first

def test_uninitialized_use_raises():
    pm = PointerMemory()
    pm.add_region("next", 4)
    pm.add_region("globals", 2)
    pm.freeze()
    fl = FreeList(pm, 4)
    with pytest.raises(RuntimeError):
        fl.pop()
    with pytest.raises(RuntimeError):
        fl.push(0)

def test_slot_bounds_checked():
    _pm, fl = make(4)
    with pytest.raises(ValueError):
        fl.push(4)
    with pytest.raises(ValueError):
        fl.push(-1)

def test_anchor_in_memory_access_counts():
    """Software free list: pop = R head, R next, W head (3 accesses);
    push = R tail, W next[slot], W next[tail], W tail (4 accesses).
    These are the 'Dequeue/Enqueue Free List' rows of Table 3."""
    pm, fl = make(8, anchors_in_memory=True)
    pm.start_trace()
    slot = fl.pop()
    assert len(pm.end_trace()) == 3
    pm.start_trace()
    fl.push(slot)
    assert len(pm.end_trace()) == 4

def test_register_anchor_access_counts():
    """Hardware free list: anchors in flip-flops; pop = 1 read,
    push = 2 writes."""
    pm, fl = make(8, anchors_in_memory=False)
    pm.start_trace()
    slot = fl.pop()
    assert len(pm.end_trace()) == 1
    pm.start_trace()
    fl.push(slot)
    assert len(pm.end_trace()) == 2

def test_push_chain_splices_in_constant_accesses():
    pm, fl = make(8, anchors_in_memory=False)
    a, b, c = fl.pop(), fl.pop(), fl.pop()
    # hand-link a -> b -> c through the next region
    pm.write("next", a, b + 1)
    pm.write("next", b, c + 1)
    pm.reset_counters()
    pm.start_trace()
    fl.push_chain(a, c, 3)
    trace = pm.end_trace()
    assert len(trace) == 2  # W next[last]=NIL, W next[old_tail]=first
    assert fl.free_count == 8
    assert sorted(fl.pop() for _ in range(8)) == list(range(8))

def test_push_chain_validation():
    _pm, fl = make(4)
    with pytest.raises(ValueError):
        fl.push_chain(0, 1, 0)
    with pytest.raises(ValueError):
        fl.push_chain(0, 9, 1)

def test_link_mask_strips_metadata_on_pop():
    """Interior words of a spliced chain keep packed metadata above the
    link field; pop must mask it off."""
    pm, fl = make(4, anchors_in_memory=False, link_mask=(1 << 24) - 1)
    a, b = fl.pop(), fl.pop()
    meta_bits = 1 << 24  # pretend EOP bit
    pm.write("next", a, (b + 1) | meta_bits)
    fl.push_chain(a, b, 2)
    got_a = fl.pop()  # reads a's word, must mask the meta bits
    assert got_a is not None
    got_rest = [fl.pop() for _ in range(3)]
    assert sorted([got_a] + got_rest) == [0, 1, 2, 3]

def test_zero_slots_rejected():
    pm = PointerMemory()
    pm.add_region("next", 1)
    pm.add_region("globals", 2)
    pm.freeze()
    with pytest.raises(ValueError):
        FreeList(pm, 0)
