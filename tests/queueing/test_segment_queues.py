"""Tests for the Section 5.2 software queue structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing import OutOfBuffersError, SegmentQueueManager
from repro.queueing.errors import QueueEmptyError
from repro.queueing.segment_queues import SegmentMeta


def make(queues=4, slots=64, **kw):
    return SegmentQueueManager(num_queues=queues, num_slots=slots, **kw)

# ------------------------------------------------------------- semantics

def test_fifo_order_single_queue():
    m = make()
    s1, _ = m.enqueue(0, SegmentMeta(pid=1))
    s2, _ = m.enqueue(0, SegmentMeta(pid=2))
    s3, _ = m.enqueue(0, SegmentMeta(pid=3))
    out = [m.dequeue(0)[0] for _ in range(3)]
    assert out == [s1, s2, s3]

def test_queues_are_independent():
    m = make()
    a, _ = m.enqueue(0, SegmentMeta(pid=1))
    b, _ = m.enqueue(1, SegmentMeta(pid=2))
    slot, meta, _t = m.dequeue(1)
    assert slot == b
    assert meta.pid == 2
    assert m.queue_length(0) == 1

def test_meta_roundtrip_through_sram_words():
    m = make()
    meta_in = SegmentMeta(eop=True, length=17, pid=9, index=3)
    m.enqueue(2, meta_in)
    _slot, meta_out, _t = m.dequeue(2)
    assert meta_out.eop
    assert meta_out.length == 17
    assert meta_out.pid == 9

def test_dequeue_empty_raises():
    m = make()
    with pytest.raises(QueueEmptyError):
        m.dequeue(0)

def test_exhaustion_raises_out_of_buffers():
    m = make(slots=4)
    for _ in range(4):
        m.enqueue(0)
    with pytest.raises(OutOfBuffersError):
        m.enqueue(0)

def test_slots_recycled_after_dequeue():
    m = make(slots=4)
    for _ in range(4):
        m.enqueue(0)
    m.dequeue(0)
    m.enqueue(1)  # must not raise
    assert m.free_slots == 0

def test_queue_validation():
    m = make(queues=2)
    with pytest.raises(ValueError):
        m.enqueue(2)
    with pytest.raises(ValueError):
        m.dequeue(-1)

def test_walk_queue_matches_fifo():
    m = make()
    slots = [m.enqueue(0)[0] for _ in range(5)]
    assert m.walk_queue(0) == slots
    m.mem.reset_counters()

# ------------------------------------------------ paper access patterns

def test_alloc_trace_is_three_accesses():
    """'Dequeue Free List' = R head, R next, W head."""
    m = make()
    _slot, trace = m.alloc()
    assert [t.kind for t in trace] == ["R", "R", "W"]

def test_release_trace_is_four_accesses():
    """'Enqueue Free List' = R tail, W next[slot], W next[tail], W tail."""
    m = make()
    slot, _ = m.alloc()
    trace = m.release(slot)
    assert len(trace) == 4
    assert [t.kind for t in trace].count("W") == 3

def test_link_first_of_packet_is_four_accesses():
    """Table 3 footnote: first segment of the packet costs less (no
    packet-header read-modify-write)."""
    m = make()
    slot, _ = m.alloc()
    trace = m.link_segment(0, slot, SegmentMeta())
    assert len(trace) == 4

def test_link_rest_of_packet_is_six_accesses():
    """Non-first segments add the head-word RMW (68 vs 46 cycles)."""
    m = make()
    head, _ = m.alloc()
    m.link_segment(0, head, SegmentMeta())
    slot, _ = m.alloc()
    trace = m.link_segment(0, slot, SegmentMeta(), packet_head_slot=head)
    assert len(trace) == 6

def test_unlink_nonlast_is_three_accesses():
    m = make()
    m.enqueue(0)
    m.enqueue(0)
    _slot, _meta, trace = m.unlink_segment(0)
    assert len(trace) == 3

def test_unlink_last_clears_tail_four_accesses():
    m = make()
    m.enqueue(0)
    _slot, _meta, trace = m.unlink_segment(0)
    assert len(trace) == 4  # + W qtail = NIL
    assert m.is_empty(0)

# -------------------------------------------------------- packet helpers

def test_enqueue_packet_segments_and_lengths():
    m = make()
    slots = m.enqueue_packet(0, num_segments=3, pid=5, last_length=10)
    assert len(slots) == 3
    assert m.packet_length_bytes(slots[0]) == 64 + 64 + 10
    segs = m.dequeue_packet(0)
    assert [meta.eop for _s, meta in segs] == [False, False, True]
    assert [meta.index for _s, meta in segs] == [0, 1, 2]

def test_dequeue_packet_stops_at_eop():
    m = make()
    m.enqueue_packet(0, 2, pid=1)
    m.enqueue_packet(0, 3, pid=2)
    first = m.dequeue_packet(0)
    assert len(first) == 2
    assert all(meta.pid == 1 for _s, meta in first)
    assert m.queue_length(0) == 3

def test_enqueue_packet_validation():
    m = make()
    with pytest.raises(ValueError):
        m.enqueue_packet(0, 0)

# ----------------------------------------------------------- invariants

@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["enq", "deq"]), st.integers(0, 3)),
                min_size=1, max_size=120))
def test_property_matches_reference_deques(ops):
    """The SRAM-backed queues behave exactly like Python deques, and
    slot conservation holds throughout."""
    from collections import deque

    m = make(queues=4, slots=32)
    ref = [deque() for _ in range(4)]
    next_pid = 0
    for op, q in ops:
        if op == "enq":
            if m.free_slots == 0:
                continue
            slot, _ = m.enqueue(q, SegmentMeta(pid=next_pid))
            ref[q].append((slot, next_pid))
            next_pid += 1
        else:
            if not ref[q]:
                with pytest.raises(QueueEmptyError):
                    m.dequeue(q)
                continue
            want_slot, want_pid = ref[q].popleft()
            slot, meta, _ = m.dequeue(q)
            assert slot == want_slot
            assert meta.pid == want_pid
        # conservation: free + queued == total
        queued = sum(m.queue_length(i) for i in range(4))
        assert m.free_slots + queued == 32

def test_segment_meta_length_validation():
    with pytest.raises(ValueError):
        SegmentMeta(length=0)
    with pytest.raises(ValueError):
        SegmentMeta(length=65)

def test_constructor_validation():
    with pytest.raises(ValueError):
        SegmentQueueManager(0, 8)
    with pytest.raises(ValueError):
        SegmentQueueManager(2, 0)
