"""Tests for the MMS two-level packet/segment queue structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing import OutOfBuffersError, PacketQueueManager, QueueEmptyError


def make(flows=8, segments=128, descriptors=32):
    return PacketQueueManager(num_flows=flows, num_segments=segments,
                              num_descriptors=descriptors)

def fill_packet(m, flow, nsegs, pid=0, last_length=64):
    slots = []
    for i in range(nsegs):
        eop = i == nsegs - 1
        slot, _ = m.enqueue_segment(flow, eop=eop,
                                    length=last_length if eop else 64,
                                    pid=pid, index=i)
        slots.append(slot)
    return slots

# ----------------------------------------------------------- semantics

def test_packet_only_visible_after_eop():
    m = make()
    m.enqueue_segment(0, eop=False)
    assert m.queued_packets(0) == 0
    assert m.open_segments(0) == 1
    with pytest.raises(QueueEmptyError):
        m.dequeue_segment(0)
    m.enqueue_segment(0, eop=True, length=20)
    assert m.queued_packets(0) == 1
    assert m.open_segments(0) == 0

def test_dequeue_returns_segments_in_order():
    m = make()
    fill_packet(m, 0, 3, pid=7, last_length=30)
    infos = [m.dequeue_segment(0)[0] for _ in range(3)]
    assert [i.index for i in infos] == [0, 1, 2]
    assert [i.eop for i in infos] == [False, False, True]
    assert infos[-1].length == 30
    assert all(i.pid == 7 for i in infos)
    assert m.queued_packets(0) == 0

def test_packets_fifo_per_flow():
    m = make()
    fill_packet(m, 0, 1, pid=1)
    fill_packet(m, 0, 2, pid=2)
    got = []
    while m.queued_segments(0):
        got.append(m.dequeue_segment(0)[0].pid)
    assert got == [1, 2, 2]

def test_interleaved_flows_keep_open_packets_separate():
    m = make()
    m.enqueue_segment(0, eop=False, pid=10)
    m.enqueue_segment(1, eop=False, pid=20)
    m.enqueue_segment(0, eop=True, pid=10)
    m.enqueue_segment(1, eop=True, pid=20)
    assert m.dequeue_segment(0)[0].pid == 10
    assert m.dequeue_segment(1)[0].pid == 20

def test_short_segment_only_at_eop():
    m = make()
    with pytest.raises(ValueError):
        m.enqueue_segment(0, eop=False, length=32)

def test_read_does_not_modify():
    m = make()
    fill_packet(m, 0, 2)
    info1, _ = m.read_segment(0)
    info2, _ = m.read_segment(0)
    assert info1.slot == info2.slot
    assert m.queued_segments(0) == 2

def test_overwrite_length_rewrites_head_segment():
    m = make()
    fill_packet(m, 0, 1, last_length=64)
    info, _ = m.overwrite_segment_length(0, 40)
    assert info.length == 40
    out, _ = m.dequeue_segment(0)
    assert out.length == 40

def test_overwrite_length_validation():
    m = make()
    fill_packet(m, 0, 2)  # head segment is mid-packet
    with pytest.raises(ValueError):
        m.overwrite_segment_length(0, 10)  # non-EOP must stay 64
    with pytest.raises(ValueError):
        m.overwrite_segment_length(0, 0)

def test_move_packet_appends_to_destination():
    m = make()
    fill_packet(m, 0, 2, pid=1)
    fill_packet(m, 1, 1, pid=2)
    m.move_packet(0, 1)
    assert m.queued_packets(0) == 0
    assert m.queued_packets(1) == 2
    assert m.queued_segments(1) == 3
    pids = []
    while m.queued_segments(1):
        pids.append(m.dequeue_segment(1)[0].pid)
    assert pids == [2, 1, 1]  # moved packet behind existing

def test_move_packet_to_empty_queue():
    m = make()
    fill_packet(m, 0, 2, pid=5)
    m.move_packet(0, 3)
    assert m.queued_packets(3) == 1
    assert m.dequeue_segment(3)[0].pid == 5

def test_move_then_dequeue_descriptor_next_cleared():
    """A moved packet's stale next link must not corrupt the new queue."""
    m = make()
    fill_packet(m, 0, 1, pid=1)
    fill_packet(m, 0, 1, pid=2)   # flow 0: [1, 2]
    m.move_packet(0, 1)           # move pkt 1 -> flow 1
    assert m.dequeue_segment(1)[0].pid == 1
    assert m.queued_packets(1) == 0  # no phantom follower
    assert m.dequeue_segment(0)[0].pid == 2

def test_move_same_queue_rejected():
    m = make()
    fill_packet(m, 0, 1)
    with pytest.raises(ValueError):
        m.move_packet(0, 0)

def test_move_empty_source_raises():
    m = make()
    with pytest.raises(QueueEmptyError):
        m.move_packet(0, 1)

def test_delete_segment_frees_slot():
    m = make(segments=16)
    fill_packet(m, 0, 2)
    before = m.free_segments
    m.delete_segment(0)
    assert m.free_segments == before + 1
    assert m.queued_segments(0) == 1

def test_delete_packet_frees_whole_chain():
    m = make(segments=16, descriptors=8)
    fill_packet(m, 0, 3, pid=1)
    fill_packet(m, 0, 2, pid=2)
    segs_before = m.free_segments
    descs_before = m.free_descriptors
    m.delete_packet(0)
    assert m.free_segments == segs_before + 3
    assert m.free_descriptors == descs_before + 1
    assert m.queued_packets(0) == 1
    assert m.dequeue_segment(0)[0].pid == 2

def test_delete_packet_slots_are_reusable():
    m = make(flows=2, segments=6, descriptors=4)
    fill_packet(m, 0, 3)
    fill_packet(m, 1, 3)
    m.delete_packet(0)
    fill_packet(m, 0, 3)  # must not raise: chain fully recycled
    assert m.free_segments == 0

def test_append_head_prepends_header_segment():
    m = make()
    fill_packet(m, 0, 2, pid=3, last_length=10)
    slot, _ = m.append_head(0, pid=99)
    infos = []
    while m.queued_segments(0):
        infos.append(m.dequeue_segment(0)[0])
    assert infos[0].slot == slot
    assert infos[0].length == 64
    assert not infos[0].eop
    assert infos[-1].eop
    assert len(infos) == 3

def test_append_tail_moves_eop():
    m = make()
    fill_packet(m, 0, 2, last_length=64)
    slot, _ = m.append_tail(0, length=12)
    infos = []
    while m.queued_segments(0):
        infos.append(m.dequeue_segment(0)[0])
    assert [i.eop for i in infos] == [False, False, True]
    assert infos[-1].slot == slot
    assert infos[-1].length == 12

def test_append_tail_behind_short_segment_rejected():
    m = make()
    fill_packet(m, 0, 1, last_length=30)
    with pytest.raises(ValueError):
        m.append_tail(0)

def test_append_on_empty_queue_raises():
    m = make()
    with pytest.raises(QueueEmptyError):
        m.append_head(0)
    with pytest.raises(QueueEmptyError):
        m.append_tail(0)

def test_overwrite_length_and_move_combined():
    m = make()
    fill_packet(m, 0, 1, last_length=64)
    fill_packet(m, 2, 1, pid=8)
    m.overwrite_length_and_move(0, 2, 25)
    assert m.queued_packets(2) == 2
    first = m.dequeue_segment(2)[0]
    moved = m.dequeue_segment(2)[0]
    assert first.pid == 8
    assert moved.length == 25

def test_overwrite_and_move_returns_data_slot():
    m = make()
    slots = fill_packet(m, 0, 2)
    info, _ = m.overwrite_and_move(0, 1)
    assert info.slot == slots[0]
    assert m.queued_packets(1) == 1

def test_exhaustion_raises():
    m = make(segments=2, descriptors=8)
    fill_packet(m, 0, 2)
    with pytest.raises(OutOfBuffersError):
        m.enqueue_segment(1, eop=True)

def test_flow_bounds_validation():
    m = make(flows=2)
    with pytest.raises(ValueError):
        m.enqueue_segment(2, eop=True)
    with pytest.raises(ValueError):
        m.move_packet(0, 5)

# ------------------------------------------------ access-count contract
# These counts are the input to the MMS microcode schedules (Table 4);
# see repro.core.microcode which cross-checks against them.

def test_trace_enqueue_mid_packet_is_six():
    m = make()
    m.enqueue_segment(0, eop=False)
    _slot, trace = m.enqueue_segment(0, eop=False)
    assert len(trace) == 6

def test_trace_enqueue_first_is_six():
    m = make()
    _slot, trace = m.enqueue_segment(0, eop=False)
    assert len(trace) == 6

def test_trace_dequeue_mid_packet_is_six():
    m = make()
    fill_packet(m, 0, 3)
    _info, trace = m.dequeue_segment(0)
    assert len(trace) == 6

def test_trace_read_is_three():
    m = make()
    fill_packet(m, 0, 1)
    _info, trace = m.read_segment(0)
    assert len(trace) == 3

def test_trace_overwrite_length_is_four():
    m = make()
    fill_packet(m, 0, 1)
    _info, trace = m.overwrite_segment_length(0, 64)
    assert len(trace) == 4

def test_trace_move_nonempty_dst_is_eight():
    m = make()
    fill_packet(m, 0, 1)
    fill_packet(m, 1, 1)
    trace = m.move_packet(0, 1)
    assert len(trace) == 8

def test_trace_delete_segment_is_six():
    m = make()
    fill_packet(m, 0, 2)
    _info, trace = m.delete_segment(0)
    assert len(trace) == 6

def test_trace_combined_ow_len_move_is_ten():
    m = make()
    fill_packet(m, 0, 1)
    fill_packet(m, 1, 1)
    trace = m.overwrite_length_and_move(0, 1, 64)
    assert len(trace) == 10

def test_trace_combined_ow_move_is_nine():
    m = make()
    fill_packet(m, 0, 1)
    fill_packet(m, 1, 1)
    _info, trace = m.overwrite_and_move(0, 1)
    assert len(trace) == 9

def test_trace_delete_packet_is_seven():
    m = make()
    fill_packet(m, 0, 2)
    fill_packet(m, 0, 1)
    trace = m.delete_packet(0)
    assert len(trace) == 7

# ----------------------------------------------------------- invariants

@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["enq", "deq", "move", "delpkt", "read"]),
              st.integers(0, 3), st.integers(0, 3), st.integers(1, 4)),
    min_size=1, max_size=80))
def test_property_conservation_and_fifo(ops):
    """Random command mixes preserve slot conservation and per-flow
    packet FIFO order, mirrored against a pure-Python model."""
    m = make(flows=4, segments=64, descriptors=24)
    ref = {f: [] for f in range(4)}   # flow -> list of (pid, nsegs-left)
    pid = 0
    for op, f, g, n in ops:
        if op == "enq":
            if m.free_segments < n or m.free_descriptors == 0:
                continue
            for i in range(n):
                m.enqueue_segment(f, eop=(i == n - 1), pid=pid, index=i)
            ref[f].append([pid, n])
            pid += 1
        elif op == "deq":
            if not ref[f]:
                with pytest.raises(QueueEmptyError):
                    m.dequeue_segment(f)
                continue
            info, _ = m.dequeue_segment(f)
            assert info.pid == ref[f][0][0]
            ref[f][0][1] -= 1
            if ref[f][0][1] == 0:
                ref[f].pop(0)
        elif op == "move":
            if f == g:
                continue
            if not ref[f] or ref[f][0][1] != _full_head_segments(ref[f]):
                # only move complete head packets in this test harness
                pass
            if not ref[f]:
                with pytest.raises(QueueEmptyError):
                    m.move_packet(f, g)
                continue
            m.move_packet(f, g)
            ref[g].append(ref[f].pop(0))
        elif op == "delpkt":
            if not ref[f]:
                with pytest.raises(QueueEmptyError):
                    m.delete_packet(f)
                continue
            m.delete_packet(f)
            ref[f].pop(0)
        elif op == "read":
            if not ref[f]:
                with pytest.raises(QueueEmptyError):
                    m.read_segment(f)
                continue
            info, _ = m.read_segment(f)
            assert info.pid == ref[f][0][0]
        # conservation: free + queued (+ nothing open in this harness)
        queued = sum(m.queued_segments(i) for i in range(4))
        assert m.free_segments + queued == 64
        for i in range(4):
            assert m.queued_packets(i) == len(ref[i])

def _full_head_segments(entries):
    return entries[0][1] if entries else 0

def test_walk_packets_structure():
    m = make()
    s1 = fill_packet(m, 0, 2, pid=1)
    s2 = fill_packet(m, 0, 1, pid=2)
    assert m.walk_packets(0) == [s1, s2]

def test_constructor_validation():
    with pytest.raises(ValueError):
        PacketQueueManager(0, 8)
    with pytest.raises(ValueError):
        PacketQueueManager(2, 0)
