"""Differential fuzz: random command streams, kernel vs stream machine.

Random per-port scripts (mixed MMS operations, random sleeps, random
seeds) are replayed twice -- through the reference heapq kernel (the full
``MMS`` with ``drive_port`` adapters) and through the command-stream
machine -- and everything observable must be byte-identical:

* the ordered per-operation pointer-access traces (``AccessRecord``
  lists, push-out walks included),
* the per-command dispatch log (operation, flow, functional result,
  trace length, dispatch time),
* the latency-record stream (delivery order *and* the picosecond
  delivery times),
* the buffer-policy counters and the full typed ``DropRecord`` stream,
* the telemetry fold (``repro.telemetry``): histogram buckets and
  percentile summaries, occupancy series and peaks, throughput/drop
  counters -- the serialized snapshot must be byte-identical,
* the final functional state: pointer-memory words, per-region access
  counters, free-list occupancy, per-flow queue depths.

Two families are generated: rich mixed-op scripts with no policy (every
command type, per-port flow ownership keeps the scripts valid under any
legal interleaving), and enqueue-heavy overload scripts against a tiny
buffer for each of the four policies, with the closed-loop probing drain
of the overload harness (push-outs, drops and descriptor exhaustion all
exercised).
"""

import json
import random

import pytest

from repro.core.commands import CommandType
from repro.core.mms import MMS, MmsConfig
from repro.core.workloads import drive_port, overload_drain_ops
from repro.engines import StreamMms
from repro.policies import PolicySpec
from repro.sim.clock import SEC
from repro.sim.kernel import make_simulator
from repro.telemetry import MmsTelemetry, TelemetrySpec

HORIZON = SEC  # far beyond any script's span

OPS = CommandType

#: Telemetry config of the fuzz replays: a small stride so the
#: occupancy series is dense enough to catch divergence.
TELE_SPEC = TelemetrySpec(sample_every=4)


class Capture:
    """Everything observable from one replay."""

    def __init__(self):
        self.traces = []    # ordered end_trace() payloads
        self.cmds = []      # (op, flow, result-repr, trace_len, time)
        self.records = []   # (time, fifo, exec, data, e2e)
        self.telemetry = ""  # serialized MmsTelemetry snapshot
        self.final = {}

    def snapshot_final(self, pqm, policy, now, commands_executed):
        mem = pqm.mem
        self.final = {
            "words": dict(mem._sram._words),
            "reads": dict(mem.reads_by_region),
            "writes": dict(mem.writes_by_region),
            "sram_counts": (mem._sram.read_count, mem._sram.write_count),
            "free": (pqm.free_segments, pqm.free_descriptors),
            "queued_p": list(pqm._queued_packets),
            "queued_s": list(pqm._queued_segments),
            "shadow": dict(pqm._seg_shadow),
            "now": now,
            "executed": commands_executed,
        }
        if policy is not None:
            s = policy.stats
            self.final["policy"] = (
                s.offered_segments, s.offered_bytes, s.accepted_segments,
                s.accepted_bytes, s.dropped_segments, s.dropped_bytes,
                s.pushed_out_segments, s.pushed_out_bytes,
                tuple(s.records),
                dict(policy.queue_segments), policy.total_segments,
                policy.total_bytes,
            )


def _capture_mem(cap, mem):
    orig_end = mem.end_trace

    def end_trace():
        trace = orig_end()
        cap.traces.append(tuple(trace))
        return trace

    mem.end_trace = end_trace


def run_reference(config, scripts, drain_counters=None,
                  drain_period=None, active_flows=0):
    cap = Capture()
    tel = MmsTelemetry(TELE_SPEC)
    mms = MMS(config, sim=make_simulator("reference"), probe=tel)
    sim = mms.sim
    _capture_mem(cap, mms.pqm.mem)

    orig_dispatch = mms.dqm._dispatch

    def dispatch(cmd):
        out = orig_dispatch(cmd)
        cap.cmds.append((cmd.type.value, cmd.flow, repr(out[0]), out[1],
                         sim.now))
        return out

    mms.dqm._dispatch = dispatch

    orig_rec = mms.breakdown.record_parts

    def record_parts(fifo_cycles, execution_cycles, data_cycles,
                     end_to_end_cycles=0.0):
        cap.records.append((sim.now, fifo_cycles, execution_cycles,
                            data_cycles, end_to_end_cycles))
        orig_rec(fifo_cycles, execution_cycles, data_cycles,
                 end_to_end_cycles)

    mms.breakdown.record_parts = record_parts

    for port, script in enumerate(scripts):
        sim.spawn(drive_port(mms, port, iter(script)), name=f"fz{port}")
    if drain_counters is not None:
        sim.spawn(drive_port(mms, 3, overload_drain_ops(
            mms.pqm.queued_packets, active_flows, drain_period,
            drain_counters)), name="drain")
    sim.run(until_ps=HORIZON)
    cap.telemetry = json.dumps(tel.snapshot().to_dict())
    cap.snapshot_final(mms.pqm, mms.policy, sim.now,
                       mms.dqm.commands_executed)
    if drain_counters is not None:
        cap.final["drained"] = drain_counters["dequeued"]
    return cap


def run_stream(config, scripts, drain_counters=None,
               drain_period=None, active_flows=0):
    cap = Capture()
    tel = MmsTelemetry(TELE_SPEC)
    eng = StreamMms(config, probe=tel)
    _capture_mem(cap, eng.pqm.mem)
    eng.trace_hook = lambda cmd, result, trace: cap.cmds.append(
        (cmd[0].value, cmd[1], repr(result), len(trace), eng.now))
    for port, script in enumerate(scripts):
        eng.add_feeder(port, iter(script))
    if drain_counters is not None:
        eng.add_feeder(3, overload_drain_ops(
            eng.pqm.queued_packets, active_flows, drain_period,
            drain_counters))
    eng.run(HORIZON)
    records = eng.latency_records(HORIZON, with_ops=True)
    for t, f, e, d, ee, op in records:
        tel.on_record(t, op, f, e, d, ee)
    cap.telemetry = json.dumps(tel.snapshot().to_dict())
    cap.records = [(t, f, e, d, ee) for t, f, e, d, ee, _op in records]
    cap.snapshot_final(eng.pqm, eng.policy, eng.now,
                       eng.commands_executed)
    if drain_counters is not None:
        cap.final["drained"] = drain_counters["dequeued"]
    return cap


def assert_identical(ref, fast):
    assert ref.cmds == fast.cmds
    assert ref.traces == fast.traces
    assert ref.records == fast.records
    assert ref.telemetry == fast.telemetry
    assert ref.final == fast.final


# ========================================== mixed-op script generation

class _FlowModel:
    """Per-flow shadow used only to generate *valid* scripts: queued
    packets as lists of segment lengths, plus the open packet."""

    def __init__(self):
        self.packets = []   # list[list[int]]
        self.open_segs = 0


def make_mixed_scripts(seed, num_ports=4, length=140, flows_per_port=3):
    """Per-port scripts over port-owned flows (flow % num_ports == port),
    so validity is preserved under per-port FIFO order regardless of the
    cross-port interleaving."""
    rng = random.Random(seed)
    scripts = [[] for _ in range(num_ports)]
    model = {}

    def owned(port):
        return [port + num_ports * k for k in range(flows_per_port)]

    for port in range(num_ports):
        for f in owned(port):
            model[f] = _FlowModel()

    def cmd(op, flow, dst=None, eop=True, length_=64):
        return (op, flow, dst, eop, length_)

    for port in range(num_ports):
        script = scripts[port]
        flows = owned(port)
        emitted = 0
        while emitted < length:
            if rng.random() < 0.3:
                script.append(rng.randrange(0, 60000))
            f = rng.choice(flows)
            m = model[f]
            choices = ["enq"]
            if m.packets:
                choices += ["deq", "read", "overwrite", "del_seg",
                            "del_pkt", "append_head", "ow_len"]
                if m.packets[0][-1] == 64 and len(m.packets[0]) < 6:
                    choices.append("append_tail")
                others = [g for g in flows if g != f]
                if others:
                    choices += ["move", "ow_move", "ow_len_move"]
            what = rng.choice(choices)
            if what == "enq":
                nsegs = rng.randrange(1, 4)
                last_len = rng.randrange(1, 65)
                for s in range(nsegs):
                    eop = s == nsegs - 1
                    script.append(cmd(OPS.ENQUEUE, f, eop=eop,
                                      length_=last_len if eop else 64))
                m.packets.append([64] * (nsegs - 1) + [last_len])
            elif what in ("deq", "del_seg"):
                op = OPS.DEQUEUE if what == "deq" else OPS.DELETE
                script.append(cmd(op, f))
                head = m.packets[0]
                head.pop(0)
                if not head:
                    m.packets.pop(0)
            elif what == "read":
                script.append(cmd(OPS.READ, f))
            elif what == "overwrite":
                script.append(cmd(OPS.OVERWRITE, f))
            elif what == "del_pkt":
                script.append(cmd(OPS.DELETE_PACKET, f))
                m.packets.pop(0)
            elif what == "append_head":
                script.append(cmd(OPS.APPEND_HEAD, f))
                m.packets[0].insert(0, 64)
            elif what == "append_tail":
                ln = rng.randrange(1, 65)
                script.append(cmd(OPS.APPEND_TAIL, f, length_=ln))
                m.packets[0][-1] = 64
                m.packets[0].append(ln)
            elif what == "ow_len":
                head = m.packets[0]
                ln = rng.randrange(1, 65) if len(head) == 1 else 64
                script.append(cmd(OPS.OVERWRITE_LENGTH, f, length_=ln))
                head[0] = ln
            else:
                dst = rng.choice([g for g in flows if g != f])
                md = model[dst]
                head = m.packets.pop(0)
                if what == "move":
                    script.append(cmd(OPS.MOVE, f, dst=dst))
                elif what == "ow_move":
                    script.append(cmd(OPS.OVERWRITE_MOVE, f, dst=dst))
                else:
                    ln = rng.randrange(1, 65) if len(head) == 1 else 64
                    script.append(cmd(OPS.OVERWRITE_LENGTH_MOVE, f,
                                      dst=dst, length_=ln))
                    head[0] = ln
                md.packets.append(head)
            emitted += 1
    return scripts


@pytest.mark.parametrize("seed", [1, 7, 2005])
def test_mixed_op_streams_identical(seed):
    config = MmsConfig(num_flows=16, num_segments=4096,
                       num_descriptors=2048)
    scripts = make_mixed_scripts(seed)
    assert_identical(run_reference(config, scripts),
                     run_stream(config, scripts))


# ======================================== policy overload script fuzz

def make_overload_scripts(seed, per_port=90, active_flows=12):
    """Three enqueue-only ingress scripts (random flows, bursts, eop
    patterns) that mark themselves done for the probing drain."""
    rng = random.Random(seed)
    counters = {"dequeued": 0}
    scripts = []
    for port in range(3):
        items = []
        open_left = 0
        flow = 0
        for i in range(per_port):
            if open_left == 0 and rng.random() < 0.4:
                items.append(rng.randrange(0, 200000))
            if open_left == 0:
                flow = rng.randrange(active_flows)
                open_left = rng.randrange(1, 4)
            open_left -= 1
            items.append((OPS.ENQUEUE, flow, None, open_left == 0, 64))

        def feeder(script=tuple(items)):
            yield from script
            counters["feeders_done"] = counters.get("feeders_done", 0) + 1

        scripts.append(feeder())
    return scripts, counters


@pytest.mark.parametrize("policy", ["taildrop", "red", "dynamic-threshold",
                                    "lqd"])
def test_policy_overload_streams_identical(policy):
    spec = PolicySpec(name=policy, alpha=0.75) \
        if policy == "dynamic-threshold" else PolicySpec(name=policy)
    config = MmsConfig(num_flows=16, num_segments=40, num_descriptors=36,
                       policy=spec, policy_seed=11, policy_records=True)
    drain_period = 2 * round(10.5 * 8000)
    for seed in (3, 19):
        ref_scripts, ref_counters = make_overload_scripts(seed)
        fast_scripts, fast_counters = make_overload_scripts(seed)
        ref = run_reference(config, ref_scripts,
                            drain_counters=ref_counters,
                            drain_period=drain_period, active_flows=12)
        fast = run_stream(config, fast_scripts,
                          drain_counters=fast_counters,
                          drain_period=drain_period, active_flows=12)
        assert_identical(ref, fast)
        assert ref.final["policy"][4] > 0, "fuzz case never dropped"
