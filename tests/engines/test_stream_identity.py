"""Trace identity of the command-stream machine vs the DES kernels.

The acceptance bar of ``repro.engines`` is equality, not tolerance:
every harness the machine claims must return *equal* results (every
dataclass field except the engine label) against the heapq reference
kernel, and the calendar kernel must agree with both.
"""

import dataclasses

import pytest

from repro.core.mms import MmsConfig, run_load, run_saturation
from repro.core.scheduler import PortConfig
from repro.engines import StreamMms, stream_supports
from repro.policies import PolicySpec
from repro.policies.harness import SHAPES, run_overload
from repro.scenarios import Runner

#: Small but structurally faithful MMS build for identity runs.
CFG = MmsConfig(num_flows=256, num_segments=4096, num_descriptors=2048)


def same_result(a, b):
    return all(getattr(a, f.name) == getattr(b, f.name)
               for f in dataclasses.fields(a) if f.name != "engine")


# ------------------------------------------------------------ run_load

@pytest.mark.parametrize("load", [1.6, 5.8, 6.5])
def test_run_load_identical_to_reference(load):
    kw = dict(num_volleys=220, config=CFG, warmup_volleys=40,
              active_flows=128)
    ref = run_load(load, engine="reference", **kw)
    fast = run_load(load, engine="fast", **kw)
    assert same_result(ref, fast)
    assert fast.engine == "fast"


def test_run_load_all_three_engines_agree():
    kw = dict(num_volleys=150, config=CFG, warmup_volleys=30,
              active_flows=128)
    ref = run_load(4.0, engine="reference", **kw)
    cal = run_load(4.0, engine="calendar", **kw)
    fast = run_load(4.0, engine="fast", **kw)
    assert same_result(ref, cal)
    assert same_result(ref, fast)


def test_run_load_identical_with_serialized_data_path():
    """The A5 ablation flag (overlap_data=False) is claimed too."""
    cfg = dataclasses.replace(CFG, overlap_data=False)
    kw = dict(num_volleys=150, config=cfg, warmup_volleys=30,
              active_flows=128)
    assert same_result(run_load(4.0, engine="reference", **kw),
                       run_load(4.0, engine="fast", **kw))


# ------------------------------------------------------ run_saturation

def test_run_saturation_identical_to_reference():
    ref = run_saturation(1600, config=CFG, active_flows=128,
                         engine="reference")
    fast = run_saturation(1600, config=CFG, active_flows=128,
                          engine="fast")
    assert same_result(ref, fast)


# -------------------------------------------------------- run_overload

@pytest.mark.parametrize("policy", ["taildrop", "red", "dynamic-threshold",
                                    "lqd"])
def test_run_overload_counters_identical(policy):
    for shape in SHAPES:
        ref = run_overload(PolicySpec(name=policy), shape,
                           num_arrivals=360, engine="reference")
        fast = run_overload(PolicySpec(name=policy), shape,
                            num_arrivals=360, engine="fast")
        assert ref.counters() == fast.counters(), (policy, shape)
        assert (ref.policy, ref.shape) == (fast.policy, fast.shape)


# ----------------------------------------------------- scenario routing

def test_table5_scenario_routes_through_stream_and_matches():
    """The acceptance criterion: Runner().run("table5", engine="fast")
    is trace-identical to engine="reference"."""
    small = MmsConfig(num_flows=512, num_segments=8192,
                      num_descriptors=4096)
    runner = Runner()
    ref = runner.run("table5", engine="reference", fast=True, mms=small)
    fast = runner.run("table5", engine="fast", fast=True, mms=small)
    assert ref.metrics == fast.metrics
    assert ref.paper_deltas == fast.paper_deltas
    assert ref.blocks == fast.blocks


def test_overload_scenario_identical_on_both_engines():
    runner = Runner()
    ref = runner.run("overload-dt-incast", engine="reference", fast=True)
    fast = runner.run("overload-dt-incast", engine="fast", fast=True)
    assert ref.metrics == fast.metrics


# --------------------------------------------------- capability gating

def test_stream_supports_default_configs():
    assert stream_supports(MmsConfig()) is None
    assert stream_supports(CFG) is None


def test_stream_rejects_custom_ports():
    ports = tuple(PortConfig(n, priority=0, fifo_depth=3)
                  for n in ("in", "out", "cpu0", "cpu1"))
    cfg = dataclasses.replace(CFG, ports=ports)
    reason = stream_supports(cfg)
    assert reason is not None and "port" in reason
    with pytest.raises(ValueError, match="port"):
        StreamMms(cfg)


def test_unsupported_config_falls_back_to_kernel():
    """engine="fast" on a backpressure study still runs (via the
    calendar kernel) and still matches the reference."""
    ports = tuple(PortConfig(n, priority=0, fifo_depth=1)
                  for n in ("in", "out", "cpu0", "cpu1"))
    cfg = dataclasses.replace(CFG, ports=ports)
    kw = dict(num_volleys=120, config=cfg, warmup_volleys=20,
              active_flows=128)
    ref = run_load(4.0, engine="reference", **kw)
    fast = run_load(4.0, engine="fast", **kw)
    assert same_result(ref, fast)


def test_stream_rejects_colliding_completion_grid():
    # 120 ns pipeline + 40 ns write delay = 160 ns == 20 MMS cycles:
    # write completions would land on the clock grid
    cfg = dataclasses.replace(CFG, dmc_pipeline_ns=120)
    assert stream_supports(cfg) is not None


def test_run_resumes_across_horizons_like_the_kernel():
    """run() must leave the first over-horizon wake scheduled, so a
    split run reaches the same state as one long run (kernel
    contract)."""
    from repro.core.workloads import saturation_feed_ops

    def build():
        eng = StreamMms(CFG)
        eng.prefill(range(128), packets_per_flow=10)
        for port, (enqueue, phase) in enumerate(((True, 0), (False, 0),
                                                 (True, 1), (False, 1))):
            eng.add_feeder(port,
                           saturation_feed_ops(enqueue, phase, 250, 128))
        return eng

    one = build()
    one.run(10**9)
    split = build()
    split.run(10**5)
    assert split.commands_executed < one.commands_executed
    split.run(10**9)
    assert split.commands_executed == one.commands_executed
    assert split.latency_records(10**9) == one.latency_records(10**9)
