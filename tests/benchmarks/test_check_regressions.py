"""The trajectory comparator (``benchmarks/check_regressions.py``):
floors, quick-entry ceilings, drift warnings and exit codes -- on
synthetic trajectory files, never by re-timing anything."""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..",
                                "benchmarks"))

from check_regressions import check_entry, main  # noqa: E402


def _entry(quick=False, **overrides):
    """A trajectory entry that satisfies every floor and ceiling."""
    benchmarks = {
        "bench_table1": {"speedup": 4.0},
        "bench_table5_stream": {"speedup": 6.0},
        "bench_telemetry": {"off_overhead": 0.01,
                            "stream_speedup_with_telemetry_off": 6.0},
        "bench_trace": {"off_overhead": 0.01,
                        "stream_speedup_with_trace_off": 6.0},
        "bench_monitor": {"off_overhead": 0.01,
                          "stream_speedup_with_monitor_off": 6.0},
        "bench_serve": {"cached_requests_per_s": 40.0},
    }
    for name, fields in overrides.items():
        benchmarks[name].update(fields)
    return {"quick": quick, "timestamp": "t", "benchmarks": benchmarks}


def _kinds(findings):
    return [severity for severity, _message in findings]


def test_clean_entry_has_no_findings():
    entry = _entry()
    assert check_entry(entry, [entry]) == []


def test_speedup_below_floor_fails():
    entry = _entry(bench_table1={"speedup": 1.5})
    (finding,) = check_entry(entry, [entry])
    assert finding[0] == "fail"
    assert "bench_table1.speedup" in finding[1] and "2.0x" in finding[1]


def test_monitor_floor_and_ceiling_are_gated():
    entry = _entry(bench_monitor={"off_overhead": 0.05,
                                  "stream_speedup_with_monitor_off": 2.0})
    findings = check_entry(entry, [entry])
    assert _kinds(findings) == ["fail", "fail"]
    assert any("stream_speedup_with_monitor_off" in m
               for _s, m in findings)
    assert any("bench_monitor.off_overhead" in m for _s, m in findings)


def test_serve_cached_throughput_floor_fails_in_req_per_s():
    entry = _entry(bench_serve={"cached_requests_per_s": 3.0})
    (finding,) = check_entry(entry, [entry])
    assert finding[0] == "fail"
    assert "bench_serve.cached_requests_per_s" in finding[1]
    assert "req/s" in finding[1] and "3.0x" not in finding[1]


def test_overhead_ceiling_warns_on_quick_entries():
    entry = _entry(quick=True, bench_trace={"off_overhead": 0.05})
    (finding,) = check_entry(entry, [entry])
    assert finding[0] == "warn" and "quick entry" in finding[1]


def test_missing_benchmark_is_a_note_not_a_failure():
    entry = _entry()
    del entry["benchmarks"]["bench_monitor"]
    findings = check_entry(entry, [entry])
    assert _kinds(findings) == ["note"]
    assert "bench_monitor" in findings[0][1]


def test_drift_vs_best_full_run_warns():
    best = _entry(bench_table5_stream={"speedup": 10.0})
    latest = _entry(bench_table5_stream={"speedup": 6.0})
    findings = check_entry(latest, [best, latest])
    assert _kinds(findings) == ["warn"]
    assert "drifted" in findings[0][1]
    # quick historical entries must not count as the drift baseline
    quick_best = _entry(quick=True,
                        bench_table5_stream={"speedup": 10.0})
    assert check_entry(latest, [quick_best, latest]) == []


def _write(tmp_path, doc):
    path = str(tmp_path / "bench.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return path


def test_main_exit_codes(tmp_path, capsys):
    ok = _write(tmp_path, {"runs": [_entry()]})
    assert main([ok]) == 0
    assert "floor(s) hold" in capsys.readouterr().out

    bad = _write(tmp_path, {"runs": [_entry(
        bench_table5_stream={"speedup": 1.0})]})
    assert main([bad]) == 1
    assert "FAIL" in capsys.readouterr().err

    assert main([str(tmp_path / "missing.json")]) == 2
    empty = _write(tmp_path, {"runs": []})
    assert main([empty]) == 2
    assert "no recorded runs" in capsys.readouterr().err


def test_main_gates_the_real_trajectory(capsys):
    """The repo's own BENCH_1.json must pass its own gate."""
    assert main([]) == 0
    assert "floor(s) hold" in capsys.readouterr().out


@pytest.mark.parametrize("field", [
    "stream_speedup_with_telemetry_off",
    "stream_speedup_with_trace_off",
    "stream_speedup_with_monitor_off",
])
def test_instrumentation_off_floors_apply(field):
    bench = {"bench_telemetry": "stream_speedup_with_telemetry_off",
             "bench_trace": "stream_speedup_with_trace_off",
             "bench_monitor": "stream_speedup_with_monitor_off"}
    name = next(k for k, v in bench.items() if v == field)
    entry = _entry(**{name: {field: 1.0}})
    (finding,) = check_entry(entry, [entry])
    assert finding[0] == "fail" and field in finding[1]
