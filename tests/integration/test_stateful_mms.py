"""Hypothesis stateful test: the MMS queue structure against a pure
Python reference model under arbitrary command interleavings."""

from collections import deque

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.queueing import PacketQueueManager, QueueEmptyError

FLOWS = 4
SEGMENTS = 96
DESCRIPTORS = 48


class MmsStructureMachine(RuleBasedStateMachine):
    """Drives PacketQueueManager with random commands, mirroring every
    effect in plain Python structures, and checks invariants after each
    step."""

    def __init__(self):
        super().__init__()
        self.m = PacketQueueManager(num_flows=FLOWS, num_segments=SEGMENTS,
                                    num_descriptors=DESCRIPTORS)
        # reference: per flow, deque of packets; packet = deque of
        # (pid, index, eop, length)
        self.ref = {f: deque() for f in range(FLOWS)}
        self.open = {f: None for f in range(FLOWS)}
        self.next_pid = 0

    # ------------------------------------------------------------- rules

    @rule(flow=st.integers(0, FLOWS - 1), nsegs=st.integers(1, 4),
          last_len=st.integers(1, 64))
    def enqueue_packet(self, flow, nsegs, last_len):
        if self.m.free_segments < nsegs or self.m.free_descriptors == 0:
            return
        pid = self.next_pid
        self.next_pid += 1
        pkt = deque()
        for i in range(nsegs):
            eop = i == nsegs - 1
            length = last_len if eop else 64
            self.m.enqueue_segment(flow, eop=eop, length=length,
                                   pid=pid, index=i)
            pkt.append((pid, i, eop, length))
        self.ref[flow].append(pkt)

    @rule(flow=st.integers(0, FLOWS - 1))
    def dequeue_segment(self, flow):
        if not self.ref[flow]:
            try:
                self.m.dequeue_segment(flow)
                raise AssertionError("expected QueueEmptyError")
            except QueueEmptyError:
                return
        info, _ = self.m.dequeue_segment(flow)
        want = self.ref[flow][0].popleft()
        assert (info.pid, info.index, info.eop, info.length) == want
        if not self.ref[flow][0]:
            self.ref[flow].popleft()

    @rule(src=st.integers(0, FLOWS - 1), dst=st.integers(0, FLOWS - 1))
    def move_packet(self, src, dst):
        if src == dst:
            return
        if not self.ref[src]:
            try:
                self.m.move_packet(src, dst)
                raise AssertionError("expected QueueEmptyError")
            except QueueEmptyError:
                return
        self.m.move_packet(src, dst)
        self.ref[dst].append(self.ref[src].popleft())

    @rule(flow=st.integers(0, FLOWS - 1))
    def delete_packet(self, flow):
        if not self.ref[flow]:
            return
        self.m.delete_packet(flow)
        self.ref[flow].popleft()

    @rule(flow=st.integers(0, FLOWS - 1))
    def read_head(self, flow):
        if not self.ref[flow]:
            return
        info, _ = self.m.read_segment(flow)
        want = self.ref[flow][0][0]
        assert (info.pid, info.index) == (want[0], want[1])

    @rule(flow=st.integers(0, FLOWS - 1), new_len=st.integers(1, 64))
    def overwrite_length(self, flow, new_len):
        if not self.ref[flow]:
            return
        head = self.ref[flow][0][0]
        if not head[2] and new_len != 64:
            return  # only EOP segments may shrink
        self.m.overwrite_segment_length(flow, new_len)
        pid, index, eop, _old = head
        self.ref[flow][0][0] = (pid, index, eop, new_len)

    # --------------------------------------------------------- invariants

    @invariant()
    def conservation(self):
        queued = sum(self.m.queued_segments(f) for f in range(FLOWS))
        open_segs = sum(self.m.open_segments(f) for f in range(FLOWS))
        assert self.m.free_segments + queued + open_segs == SEGMENTS

    @invariant()
    def packet_counts_agree(self):
        for f in range(FLOWS):
            assert self.m.queued_packets(f) == len(self.ref[f])

    @invariant()
    def segment_counts_agree(self):
        for f in range(FLOWS):
            want = sum(len(p) for p in self.ref[f])
            assert self.m.queued_segments(f) == want

    @invariant()
    def walk_matches_reference(self):
        for f in range(FLOWS):
            walked = self.m.walk_packets(f)
            assert len(walked) == len(self.ref[f])
            for slots, pkt in zip(walked, self.ref[f]):
                assert len(slots) == len(pkt)


MmsStructureMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)
TestMmsStructure = MmsStructureMachine.TestCase
