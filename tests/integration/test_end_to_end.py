"""Cross-module integration tests: traffic -> MMS -> reassembly, and
platform-vs-platform consistency."""

import random


from repro.core import MMS, Command, CommandType, MmsConfig
from repro.net import (
    Packet,
    PacketTrace,
    imix_stream,
    uniform_flow_chooser,
)
from repro.sim.clock import SEC


def test_imix_traffic_through_mms_preserves_flow_order():
    """Segment an IMIX stream into the MMS, dequeue everything, and
    verify per-flow packet order and byte conservation."""
    from itertools import islice

    rng = random.Random(11)
    cfg = MmsConfig(num_flows=8, num_segments=8192, num_descriptors=4096)
    mms = MMS(cfg)
    stream = imix_stream(1.0, flow_chooser=uniform_flow_chooser(8), rng=rng)
    packets = [tp.packet for tp in islice(stream, 120)]

    in_trace = PacketTrace("in")
    for t, pkt in enumerate(packets):
        in_trace.record(t, pkt)
        for cmd in mms.segmentation.segment(pkt):
            mms.apply(cmd)

    out_trace = PacketTrace("out")
    t = 0
    done = 0
    while done < len(packets):
        for flow in range(8):
            if mms.pqm.queued_segments(flow) == 0:
                continue
            info = mms.apply(Command(type=CommandType.DEQUEUE, flow=flow))
            result = mms.reassembly.feed(flow, info)
            if result is not None:
                out_trace.record(t, Packet(result.length_bytes,
                                           flow_id=result.flow,
                                           pid=result.pid))
                t += 1
                done += 1

    assert len(out_trace) == len(packets)
    assert out_trace.is_per_flow_order_preserved(in_trace)
    assert out_trace.total_bytes == in_trace.total_bytes
    assert mms.pqm.free_segments == cfg.num_segments

def test_timed_mms_pipeline_with_des_kernel():
    """Run a producer/consumer pair against the timed MMS: the consumer
    sees every packet the producer queued, in order, and the simulated
    rates respect the 10.5-cycle execution budget."""
    cfg = MmsConfig(num_flows=4, num_segments=1024, num_descriptors=512)
    mms = MMS(cfg)
    sim = mms.sim
    sent, received = [], []

    def producer():
        for i in range(30):
            pkt = Packet(64, flow_id=i % 4)
            sent.append(pkt.pid)
            for cmd in mms.segmentation.segment(pkt):
                yield from mms.submit(0, cmd)
            yield 2_000_000  # 2 us between packets

    def consumer():
        grabbed = 0
        while grabbed < 30:
            progress = False
            for flow in range(4):
                if mms.pqm.queued_packets(flow) == 0:
                    continue
                cmd = Command(type=CommandType.DEQUEUE, flow=flow)
                info = yield from mms.submit_and_wait(1, cmd)
                out = mms.reassembly.feed(flow, info)
                if out is not None:
                    received.append(out.pid)
                    grabbed += 1
                progress = True
            if not progress:
                yield 500_000  # poll every 0.5 us

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run(until_ps=SEC // 10)
    assert received == sent  # global FIFO here: one flow rotation
    assert mms.commands_executed == 60
    # 60 commands x >= 10 cycles at 8 ns: at least 4.8 us of execution
    assert sim.now >= 60 * 10 * 8000

def test_switch_and_router_compose_over_shared_packet_types():
    """Packets leaving the QoS switch can be routed by the IP router:
    the apps share the same Packet abstraction and MMS semantics."""
    from repro.apps import IpRouter, QosEthernetSwitch, SwitchConfig

    sw = QosEthernetSwitch(SwitchConfig(num_ports=2))
    router = IpRouter(num_next_hops=2)
    router.table.add("10.0.0.0", 8, next_hop=0)
    router.table.add("0.0.0.0", 0, next_hop=1)

    # teach the switch that the router sits on port 1
    sw.ingress(1, Packet(64, fields={"src_mac": "router", "dst_mac": "?"}))
    for _ in range(2):
        sw.egress(0)  # drain flood

    frames = [
        Packet(64, fields={"src_mac": "hostA", "dst_mac": "router",
                           "pcp": 3, "dst_ip": "10.1.1.1", "ttl": 9}),
        Packet(300, fields={"src_mac": "hostA", "dst_mac": "router",
                            "pcp": 0, "dst_ip": "8.8.8.8", "ttl": 9}),
    ]
    for f in frames:
        sw.ingress(0, f)

    # frames leave the switch towards the router, highest priority first
    out1 = sw.egress(1)
    out2 = sw.egress(1)
    assert out1.pid == frames[0].pid
    for f in (out1, out2):
        router.receive(f)
    router.route_all()
    assert router.transmit(0).pid == frames[0].pid  # 10/8 route
    assert router.transmit(1).pid == frames[1].pid  # default route
    assert router.stats().routed == 2

def test_ixp_and_npu_models_agree_on_the_software_story():
    """Both software platforms land in the same regime: hundreds of
    Mbps at best for many-queue 64-byte traffic, far under the MMS."""
    from repro.core.mms import MmsConfig as MC, run_saturation
    from repro.ixp import simulate_ixp
    from repro.net import pps_to_gbps
    from repro.npu import CopyStrategy, QueueSwModel

    ixp_gbps = pps_to_gbps(simulate_ixp(1024, 6).pps, 64)
    npu_gbps = QueueSwModel().full_duplex_gbps(CopyStrategy.LINE)
    mms_gbps = run_saturation(
        num_commands=1500,
        config=MC(num_flows=512, num_segments=4096,
                  num_descriptors=2048)).achieved_gbps
    assert ixp_gbps < 0.25
    assert npu_gbps < 0.25
    assert mms_gbps > 5.5
    assert mms_gbps > 20 * max(ixp_gbps, npu_gbps)
