"""Acceptance criterion: byte-identical telemetry JSON across engines.

For every ``latency-*`` scenario (and the ``overload-*`` family run
with the telemetry knob), ``engine="fast"`` and ``engine="reference"``
must produce *byte-identical* telemetry payloads -- histogram buckets,
percentile summaries, occupancy series, counters -- because telemetry
is a deterministic fold over the dispatch/record streams the
engine-identity suite already proves equal.
"""

import json

import pytest

from repro.scenarios import Runner, scenario_names
from repro.scenarios.registry import scenarios_of_kind

LATENCY_NAMES = [s.spec.name for s in scenarios_of_kind("latency")]


def _tele_json(result):
    return json.dumps(result.metrics["telemetry"], sort_keys=True)


def test_latency_family_is_complete():
    assert len(LATENCY_NAMES) == 12
    assert {n.split("-")[1] for n in LATENCY_NAMES} == \
        {"taildrop", "red", "dt", "lqd"}
    assert {n.split("-")[2] for n in LATENCY_NAMES} == \
        {"burst", "sustained", "incast"}


@pytest.mark.parametrize("name", LATENCY_NAMES)
def test_latency_scenarios_byte_identical_across_engines(name):
    runner = Runner()
    ref = runner.run(name, engine="reference", fast=True)
    fast = runner.run(name, engine="fast", fast=True)
    assert _tele_json(ref) == _tele_json(fast)
    # the full metrics payload (drop counters, percentiles pulled up to
    # top level) must agree too
    assert json.dumps(ref.metrics, sort_keys=True) == \
        json.dumps(fast.metrics, sort_keys=True)
    assert ref.engine == "reference" and fast.engine == "fast"


@pytest.mark.parametrize("name", ["overload-red-sustained",
                                  "overload-lqd-incast"])
def test_overload_with_telemetry_knob_byte_identical(name):
    runner = Runner()
    ref = runner.run(name, engine="reference", fast=True, telemetry=True)
    fast = runner.run(name, engine="fast", fast=True, telemetry=True)
    assert _tele_json(ref) == _tele_json(fast)


def test_latency_metrics_expose_percentile_headlines():
    result = Runner().run("latency-taildrop-burst", fast=True)
    for key in ("enqueue_e2e_p50", "enqueue_e2e_p99", "enqueue_e2e_max",
                "dequeue_e2e_p99", "occupancy_peak", "drop_rate"):
        assert key in result.metrics, key
    snap = result.metrics["telemetry"]
    assert snap["schema"] == 1
    assert snap["counters"]["dropped_commands"] > 0
    assert snap["occupancy"]["peak_total"] > 0
    assert snap["occupancy"]["series"], "occupancy series empty"


def test_telemetry_off_by_default_outside_latency_family():
    """Probes must be structurally absent unless asked for."""
    result = Runner().run("overload-taildrop-burst", fast=True)
    assert "telemetry" not in result.metrics
    for name in scenario_names():
        if not name.startswith("latency-"):
            from repro.scenarios.registry import get_scenario
            assert get_scenario(name).spec.telemetry is None, name
