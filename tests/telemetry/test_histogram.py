"""Unit tests for the streaming log2 histogram."""

import json
import math
import random

import pytest

from repro.telemetry import Log2Histogram
from repro.telemetry.histogram import bucket_bounds, bucket_of


# ------------------------------------------------------------- buckets

def test_bucket_edges():
    assert bucket_of(0.0) == 0
    assert bucket_of(0.999) == 0
    assert bucket_of(1.0) == 1
    assert bucket_of(1.999) == 1
    assert bucket_of(2.0) == 2
    assert bucket_of(3.999) == 2
    assert bucket_of(4.0) == 3
    assert bucket_of(-5.0) == 0  # clamped


def test_bucket_bounds_cover_their_values():
    rng = random.Random(7)
    for _ in range(500):
        v = rng.uniform(0, 10_000)
        lo, hi = bucket_bounds(bucket_of(v))
        assert lo <= v < hi


def test_bucket_bounds_rejects_negative():
    with pytest.raises(ValueError, match="bucket"):
        bucket_bounds(-1)


# ---------------------------------------------------------- streaming

def test_exact_counts_sum_min_max():
    h = Log2Histogram()
    values = [0.0, 0.5, 1.0, 3.0, 3.5, 100.0, 100.0]
    for v in values:
        h.add(v)
    assert h.count == len(values)
    assert h.total == sum(values)
    assert h.minimum == 0.0
    assert h.maximum == 100.0
    assert h.buckets == {0: 2, 1: 1, 2: 2, 7: 2}
    assert sum(h.buckets.values()) == h.count


def test_empty_histogram_is_neutral():
    h = Log2Histogram()
    assert h.count == 0
    assert h.mean == 0.0
    assert h.minimum == 0.0 and h.maximum == 0.0
    assert h.percentile(99.0) == 0.0
    d = h.to_dict((50.0,))
    assert d["count"] == 0 and d["buckets"] == {}


# --------------------------------------------------------- percentiles

def test_percentiles_monotone_and_bounded():
    rng = random.Random(2005)
    h = Log2Histogram()
    samples = [rng.expovariate(1 / 50.0) for _ in range(5000)]
    for v in samples:
        h.add(v)
    ps = [10, 50, 90, 99, 99.9, 100]
    estimates = [h.percentile(p) for p in ps]
    assert estimates == sorted(estimates)
    assert all(h.minimum <= e <= h.maximum for e in estimates)
    assert h.percentile(100.0) == max(samples)
    # log2 buckets: the estimate is within its covering bucket, i.e.
    # within a factor of 2 of the exact rank statistic (for values >= 1)
    exact = sorted(samples)
    for p, est in zip(ps, estimates):
        want = exact[min(len(exact) - 1,
                         max(0, math.ceil(p / 100 * len(exact)) - 1))]
        if want >= 1.0:
            assert est / want < 2.0 and want / est < 2.0, (p, est, want)


def test_percentile_validates_range():
    h = Log2Histogram()
    h.add(1.0)
    for bad in (0.0, -1.0, 100.1):
        with pytest.raises(ValueError, match="percentile"):
            h.percentile(bad)


def test_single_sample_percentiles_are_that_sample():
    h = Log2Histogram()
    h.add(42.0)
    for p in (1, 50, 99.9, 100):
        assert h.percentile(p) == 42.0


def test_summary_keys_and_exact_max():
    h = Log2Histogram()
    for v in (1.0, 10.0, 1000.0):
        h.add(v)
    s = h.summary((50.0, 99.9))
    assert list(s) == ["p50", "p99.9", "max"]
    assert s["max"] == 1000.0


# ------------------------------------------------------- serialization

def test_dict_round_trip_is_exact():
    rng = random.Random(11)
    h = Log2Histogram()
    for _ in range(1000):
        h.add(rng.uniform(0, 1e6))
    ps = (50.0, 90.0, 99.0, 99.9)
    d = h.to_dict(ps)
    back = Log2Histogram.from_dict(d)
    assert back.to_dict(ps) == d
    # and byte-exact through JSON (floats included)
    assert json.loads(json.dumps(d)) == d


def test_from_dict_rejects_inconsistent_counts():
    h = Log2Histogram()
    h.add(3.0)
    d = h.to_dict()
    d["count"] = 2
    with pytest.raises(ValueError, match="disagree"):
        Log2Histogram.from_dict(d)


def test_bucket_keys_serialized_sorted():
    h = Log2Histogram()
    for v in (1000.0, 1.0, 30.0):
        h.add(v)
    assert list(h.to_dict()["buckets"]) == \
        sorted(h.to_dict()["buckets"], key=int)
