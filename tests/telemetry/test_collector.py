"""Unit tests for the standard MMS probe and its snapshot schema."""

import json

import pytest

from repro.core.commands import CommandType
from repro.policies.base import DroppedSegment
from repro.telemetry import (
    MmsTelemetry,
    TelemetrySnapshot,
    TelemetrySpec,
    validate_telemetry_dict,
)

ENQ = CommandType.ENQUEUE
DEQ = CommandType.DEQUEUE
MOVE = CommandType.MOVE


# ------------------------------------------------------------- spec

def test_spec_validation():
    TelemetrySpec(sample_every=1, percentiles=(1.0, 100.0))
    with pytest.raises(ValueError, match="sample_every"):
        TelemetrySpec(sample_every=0)
    with pytest.raises(ValueError, match="percentiles"):
        TelemetrySpec(percentiles=())
    with pytest.raises(ValueError, match="percentiles"):
        TelemetrySpec(percentiles=(0.0,))
    with pytest.raises(ValueError, match="percentiles"):
        TelemetrySpec(percentiles=(101.0,))


# ------------------------------------------------------ command channel

def test_command_channel_counters_and_occupancy():
    tel = MmsTelemetry(TelemetrySpec(sample_every=2))
    tel.on_command(100, ENQ, 3, 17, queue_depth=1, total_segments=1)
    tel.on_command(200, ENQ, 3, 18, queue_depth=2, total_segments=2)
    tel.on_command(300, ENQ, 4,
                   DroppedSegment(queue=4, length=64, reason="buffer full"),
                   queue_depth=0, total_segments=2)
    tel.on_command(400, DEQ, 3, object(), queue_depth=1, total_segments=1)
    snap = tel.snapshot()
    c = snap.counters
    assert c["commands"] == 4
    assert c["by_op"] == {"dequeue": 1, "enqueue": 3}
    assert c["dropped_commands"] == 1
    assert c["drops_by_reason"] == {"buffer full": 1}
    occ = snap.occupancy
    # stride 2: commands 0 and 2 sampled
    assert occ["series"] == [[100, 1], [300, 2]]
    assert occ["peak_total"] == 2
    assert occ["peak_time_ps"] == 200  # first time the peak was reached
    assert occ["final_total"] == 1
    assert occ["queue_peaks"] == {"3": 2, "4": 0}


def test_record_channel_histograms_by_class():
    tel = MmsTelemetry()
    tel.on_record(1000, ENQ, 2.0, 10.0, 5.0, 14.0)
    tel.on_record(2000, DEQ, 3.0, 11.0, 6.0, 16.0)
    tel.on_record(3000, MOVE, 0.0, 8.0, 0.0, 8.0)
    h = tel.snapshot().histograms
    assert set(h) == {"all.e2e", "all.fifo", "enqueue.e2e", "enqueue.fifo",
                      "dequeue.e2e", "dequeue.fifo", "other.e2e",
                      "other.fifo"}
    assert h["all.e2e"]["count"] == 3
    assert h["enqueue.e2e"]["count"] == 1
    assert h["enqueue.e2e"]["max"] == 14.0
    assert h["dequeue.fifo"]["max"] == 3.0
    assert h["other.e2e"]["sum"] == 8.0


def test_channels_are_independent():
    """Folding the channels in either order yields the same snapshot
    (the stream engine replays records after all commands)."""
    a, b = MmsTelemetry(), MmsTelemetry()
    commands = [(100 * i, ENQ, i % 3, i, 1, i + 1) for i in range(10)]
    records = [(100 * i + 50, ENQ, 1.0 * i, 10.0, 2.0, 12.0 + i)
               for i in range(10)]
    for cmd in commands:
        a.on_command(*cmd)
    for rec in records:
        a.on_record(*rec)
    for cmd, rec in zip(commands, records):
        b.on_command(*cmd)
        b.on_record(*rec)
    assert a.snapshot().to_dict() == b.snapshot().to_dict()


# ----------------------------------------------------------- snapshot

def _sample_snapshot():
    tel = MmsTelemetry(TelemetrySpec(sample_every=4))
    for i in range(50):
        op = ENQ if i % 2 == 0 else DEQ
        tel.on_command(1000 * i, op, i % 5, i, queue_depth=i % 7,
                       total_segments=i % 11)
        tel.on_record(1000 * i + 500, op, 0.5 * i, 10.5, 3.25, 14.25 + i)
    return tel.snapshot()


def test_snapshot_json_round_trip_is_exact():
    snap = _sample_snapshot()
    d = snap.to_dict()
    assert validate_telemetry_dict(d) == []
    blob = json.dumps(d)
    back = TelemetrySnapshot.from_dict(json.loads(blob))
    assert back.to_dict() == d
    assert json.dumps(back.to_dict()) == blob


def test_snapshot_keys_deterministically_sorted():
    d = _sample_snapshot().to_dict()
    assert list(d["histograms"]) == sorted(d["histograms"])
    assert list(d["counters"]["by_op"]) == sorted(d["counters"]["by_op"])
    qp = d["occupancy"]["queue_peaks"]
    assert list(qp) == sorted(qp, key=int)


def test_snapshot_percentile_recompute_matches_summary():
    snap = _sample_snapshot()
    for name, h in snap.histograms.items():
        for label, value in h["percentiles"].items():
            if label == "max":
                continue
            p = float(label.lstrip("p"))
            assert snap.percentile(name, p) == value


def test_validate_rejects_malformed_payloads():
    good = _sample_snapshot().to_dict()
    assert validate_telemetry_dict(good) == []
    assert validate_telemetry_dict({"schema": 99}) != []
    bad = json.loads(json.dumps(good))
    first_bucket = next(iter(bad["histograms"]["all.e2e"]["buckets"]))
    bad["histograms"]["all.e2e"]["buckets"][first_bucket] += 1
    assert any("bucket counts" in p for p in validate_telemetry_dict(bad))
    bad2 = json.loads(json.dumps(good))
    bad2["occupancy"]["series"].append([1, 2, 3])
    assert any("series" in p for p in validate_telemetry_dict(bad2))
    with pytest.raises(ValueError, match="invalid telemetry"):
        TelemetrySnapshot.from_dict({"schema": 1})
