"""Acceptance criterion: byte-identical trace JSON across engines.

The span tracer is a deterministic fold over the dispatch and stage
streams, and the stage bounds themselves ride the engine-identity
contract -- so for every latency-family policy the ``fast`` and
``reference`` engines must produce *byte-identical* trace payloads:
same spans, same ``(time_ps, seq)`` bounds, same verdicts, same
attribution integers.
"""

import json

import pytest

from repro.scenarios import Runner, scenario_names
from repro.scenarios.registry import get_scenario, scenarios_of_kind
from repro.trace import TraceSpec

LATENCY_NAMES = [s.spec.name for s in scenarios_of_kind("latency")]

#: One scenario per policy: the burst shape exercises drops for all.
POLICY_BURSTS = sorted(n for n in LATENCY_NAMES if n.endswith("-burst"))


def _trace_json(result):
    return json.dumps(result.metrics["trace"], sort_keys=True)


@pytest.mark.parametrize("name", POLICY_BURSTS)
def test_latency_burst_traces_byte_identical_across_engines(name):
    runner = Runner()
    ref = runner.run(name, engine="reference", fast=True, trace=True)
    fast = runner.run(name, engine="fast", fast=True, trace=True)
    assert _trace_json(ref) == _trace_json(fast)
    snap = fast.metrics["trace"]
    assert snap["schema"] == 1
    assert snap["counters"]["spans"] == len(snap["spans"])
    assert snap["counters"]["completed"] == snap["counters"]["dispatched"]
    assert snap["attribution"]["total_ps"] > 0


@pytest.mark.parametrize("name", [n for n in LATENCY_NAMES
                                  if not n.endswith("-burst")])
def test_latency_other_shapes_traces_byte_identical(name):
    runner = Runner()
    ref = runner.run(name, engine="reference", fast=True, trace=True)
    fast = runner.run(name, engine="fast", fast=True, trace=True)
    assert _trace_json(ref) == _trace_json(fast)


def test_overload_with_trace_knob_byte_identical():
    runner = Runner()
    ref = runner.run("overload-red-sustained", engine="reference",
                     fast=True, trace=True)
    fast = runner.run("overload-red-sustained", engine="fast",
                      fast=True, trace=True)
    assert _trace_json(ref) == _trace_json(fast)
    assert ref.metrics["trace"]["counters"]["dropped_commands"] > 0


def test_trace_rides_alongside_telemetry_unchanged():
    """Chaining the tracer after the telemetry collector must not
    perturb the telemetry fold (ProbeChain fan-out, not interference)."""
    runner = Runner()
    plain = runner.run("latency-lqd-burst", fast=True)
    traced = runner.run("latency-lqd-burst", fast=True, trace=True)
    assert json.dumps(plain.metrics["telemetry"], sort_keys=True) == \
        json.dumps(traced.metrics["telemetry"], sort_keys=True)
    assert "trace" not in plain.metrics
    assert "trace" in traced.metrics


def test_trace_off_by_default_everywhere():
    """The stage channel must be structurally absent unless asked for."""
    result = Runner().run("latency-taildrop-burst", fast=True)
    assert "trace" not in result.metrics
    for name in scenario_names():
        assert get_scenario(name).spec.trace is None, name


def test_max_spans_cap_preserves_attribution():
    runner = Runner()
    full = runner.run("latency-red-burst", fast=True, trace=True)
    capped = runner.run("latency-red-burst", fast=True,
                        trace=TraceSpec(max_spans=16))
    snap = capped.metrics["trace"]
    assert snap["counters"]["truncated_spans"] > 0
    assert all(s["seq"] < 16 for s in snap["spans"])
    assert snap["attribution"] == full.metrics["trace"]["attribution"]
    assert snap["counters"]["dispatched"] == \
        full.metrics["trace"]["counters"]["dispatched"]
