"""CLI surface of the tracing subsystem: --trace, trace-export,
trace-diff and report, exercised through ``main`` end to end."""

import json
import os

import pytest

from repro.analysis.cli import main


@pytest.fixture(scope="module")
def traced_doc(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "run.json")
    assert main(["run", "latency-lqd-burst", "--fast", "--trace",
                 "--quiet", "--json", path]) == 0
    return path


def test_run_trace_flag_lands_snapshot(traced_doc):
    with open(traced_doc, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    snap = doc["runs"][0]["metrics"]["trace"]
    assert snap["schema"] == 1 and snap["spans"]


def test_list_advertises_trace_capability(tmp_path):
    path = str(tmp_path / "specs.json")
    assert main(["list", "--json", path]) == 0
    with open(path, "r", encoding="utf-8") as fh:
        specs = json.load(fh)["scenarios"]
    by_name = {s["name"]: s for s in specs}
    # every spec reports the knob; none carries a TraceSpec by default
    assert all("trace" in s for s in specs)
    assert by_name["latency-lqd-burst"]["trace"] is False


def test_trace_export_round_trip(traced_doc, tmp_path, capsys):
    out = str(tmp_path / "chrome.json")
    assert main(["trace-export", traced_doc, out]) == 0
    assert "perfetto" in capsys.readouterr().out
    with open(out, "r", encoding="utf-8") as fh:
        chrome = json.load(fh)
    assert any(e["ph"] == "X" for e in chrome["traceEvents"])


def test_trace_export_errors_exit_2(tmp_path, capsys):
    missing = str(tmp_path / "nope.json")
    assert main(["trace-export", missing, str(tmp_path / "o.json")]) == 2
    assert "cannot read" in capsys.readouterr().err
    untraced = str(tmp_path / "untraced.json")
    with open(untraced, "w", encoding="utf-8") as fh:
        json.dump({"schema": 1, "metrics": {}}, fh)
    assert main(["trace-export", untraced,
                 str(tmp_path / "o.json")]) == 2
    assert "no trace" in capsys.readouterr().err


def test_trace_diff_identical_and_divergent(traced_doc, tmp_path,
                                            capsys):
    assert main(["trace-diff", traced_doc, traced_doc]) == 0
    assert "identical" in capsys.readouterr().out

    with open(traced_doc, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    spans = doc["runs"][0]["metrics"]["trace"]["spans"]
    spans[3]["end_ps"] += 1
    mutated = str(tmp_path / "mutated.json")
    with open(mutated, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    assert main(["trace-diff", traced_doc, mutated]) == 1
    out = capsys.readouterr().out
    assert "first divergent span: index 3" in out
    assert "end_ps" in out


def test_trace_diff_unreadable_exits_2(traced_doc, tmp_path):
    assert main(["trace-diff", traced_doc,
                 str(tmp_path / "gone.json")]) == 2


def test_report_command(traced_doc, capsys):
    assert main(["report", traced_doc]) == 0
    out = capsys.readouterr().out
    assert "== latency-lqd-burst" in out
    assert "attribution:" in out


def test_report_rejects_junk(tmp_path, capsys):
    junk = str(tmp_path / "junk.json")
    with open(junk, "w", encoding="utf-8") as fh:
        fh.write("{\"nothing\": true}")
    assert main(["report", junk]) == 2
    assert "neither" in capsys.readouterr().err


def test_checkpoint_run_carries_trace_spec(tmp_path):
    """checkpoint-run on a latency scenario folds the spec's trace
    knob into the params (None when the scenario declares none)."""
    from repro.analysis.cli import _checkpoint_build
    import argparse
    args = argparse.Namespace(resume_from=None,
                              scenario="latency-lqd-burst",
                              engine=None, seed=None, fast=True)
    run, stem = _checkpoint_build(args)
    assert stem == "latency-lqd-burst"
    assert run.params["trace"] is None
    assert run.tracer is None


def test_sweep_failure_table_has_wall_column(capsys, tmp_path,
                                             monkeypatch):
    """A serial-path failure renders '-' in the wall column (only the
    pool measures per-task wall clock)."""
    from repro.analysis.cli import _print_failures
    from repro.checkpoint import TaskFailure
    _print_failures([
        TaskFailure(name="a", attempts=1, reason="boom"),
        TaskFailure(name="b", attempts=2, reason="slow",
                    wall_clock_s=1.234),
    ])
    err = capsys.readouterr().err
    assert "wall=-" in err
    assert "wall=1.23s" in err


def test_failure_dicts_in_json_document_carry_wall_clock(tmp_path,
                                                         monkeypatch):
    """The sweep --json document's failure entries expose the pool's
    per-task wall clock (None on the serial path)."""
    import repro.scenarios.runner as runner_mod

    def boom(self, name, **kw):
        raise RuntimeError("induced")

    monkeypatch.setattr(runner_mod.Runner, "run", boom)
    path = str(tmp_path / "doc.json")
    assert main(["run", "latency-red-burst", "--fast", "--quiet",
                 "--json", path]) == 3
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    (failure,) = doc["failures"]
    assert failure["name"] == "latency-red-burst"
    assert "wall_clock_s" in failure and failure["wall_clock_s"] is None
