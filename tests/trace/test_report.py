"""Run-report rendering over every document shape the CLI produces."""

import pytest

from repro.scenarios import Runner
from repro.trace.report import render_report


@pytest.fixture(scope="module")
def result():
    return Runner().run("latency-lqd-burst", fast=True, trace=True)


def test_single_result_report(result):
    text = render_report(result.to_dict(), source="run.json")
    assert text.startswith("report: run.json")
    assert "== latency-lqd-burst (latency)" in text
    assert "engine=fast" in text and "budget=fast" in text
    assert "telemetry: 599 commands, 17 dropped" in text
    assert "all.e2e" in text and "p99" in text
    assert "trace: 599 dispatched, 599 completed, 1780 spans" in text
    assert "attribution: fifo" in text and "dmc+ddr" in text
    assert "drops: lqd: arriving queue longest=17" in text


def test_run_document_with_failures(result):
    doc = {"schema": 1, "runs": [result.to_dict()],
           "failures": [{"name": "latency-red-burst", "attempts": 2,
                         "reason": "ValueError: boom"}]}
    text = render_report(doc)
    assert "failures: 1" in text
    assert "latency-red-burst: ValueError: boom" in text


def test_raw_trace_report(result):
    text = render_report(result.metrics["trace"])
    assert text.startswith("trace: 599 dispatched")
    assert "attribution:" in text


def test_untraced_result_still_reports(result):
    plain = Runner().run("overload-taildrop-burst", fast=True)
    text = render_report(plain.to_dict())
    assert "== overload-taildrop-burst" in text
    assert "trace:" not in text


def test_per_load_blocks_are_labelled(result):
    trace = result.metrics["trace"]
    fake = dict(result.to_dict())
    fake["metrics"] = {"trace": {"load8": trace, "load2": trace}}
    text = render_report(fake)
    assert text.index("[load2]") < text.index("[load8]")


def test_checkpoint_run_envelope(result):
    doc = {"schema": 1, "scenario": "latency-lqd-burst",
           "engine": "stream",
           "result": {"dropped_segments": 17, "dequeued_segments": 222},
           "checkpoints": ["a.json", "b.json"]}
    text = render_report(doc)
    assert "== latency-lqd-burst  engine=stream  checkpoints=2" in text
    assert "counters: dequeued_segments=222  dropped_segments=17" in text


def test_truncation_note(result):
    from repro.trace import TraceSpec
    capped = Runner().run("latency-lqd-burst", fast=True,
                          trace=TraceSpec(max_spans=8))
    text = render_report(capped.to_dict())
    assert "span retention capped" in text


def test_rejects_unrecognized_documents():
    with pytest.raises(ValueError):
        render_report({"what": "ever"})
    with pytest.raises(ValueError):
        render_report([1, 2, 3])
