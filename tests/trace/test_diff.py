"""Divergence localization: the diff names the exact first bad span."""

import copy

import pytest

from repro.scenarios import Runner
from repro.trace.diff import Divergence, first_divergence, render


@pytest.fixture(scope="module")
def trace():
    result = Runner().run("latency-lqd-burst", fast=True, trace=True)
    return result.metrics["trace"]


def test_identical_traces_have_no_divergence(trace):
    assert first_divergence(trace, copy.deepcopy(trace)) is None
    text = render(None, "a.json", "b.json")
    assert "identical" in text and "a.json" in text


def test_single_field_mutation_is_localized_exactly(trace):
    k = len(trace["spans"]) // 2
    mutated = copy.deepcopy(trace)
    orig = mutated["spans"][k]["end_ps"]
    mutated["spans"][k]["end_ps"] = orig + 1
    div = first_divergence(trace, mutated, context=2)
    assert div.kind == "spans"
    assert div.index == k
    assert div.fields == (("end_ps", orig, orig + 1),)
    assert div.context_start == k - 2
    assert len(div.context_a) == 5 and len(div.context_b) == 5
    assert div.context_a[2] == trace["spans"][k]
    text = render(div, "A", "B")
    assert f"index {k}" in text
    assert f"end_ps: A={orig!r}  B={orig + 1!r}" in text
    # the context rows mark the divergent line
    assert any(line.startswith(f" >{k:>6}") for line in text.splitlines())


def test_earliest_of_several_mutations_wins(trace):
    mutated = copy.deepcopy(trace)
    mutated["spans"][5]["flow"] += 1
    mutated["spans"][9]["begin_ps"] += 7
    div = first_divergence(trace, mutated)
    assert (div.kind, div.index) == ("spans", 5)
    assert div.fields[0][0] == "flow"


def test_truncated_span_list_reports_span_count(trace):
    shorter = copy.deepcopy(trace)
    dropped = shorter["spans"].pop()
    div = first_divergence(trace, shorter)
    assert div.kind == "span-count"
    assert div.index == len(shorter["spans"])
    assert div.fields == (("len(spans)", len(trace["spans"]),
                           len(shorter["spans"])),)
    assert div.context_a[-1] == dropped
    assert "length" in render(div, "A", "B")


def test_aggregate_only_divergence(trace):
    mutated = copy.deepcopy(trace)
    mutated["counters"] = dict(mutated["counters"],
                               dropped_commands=999)
    div = first_divergence(trace, mutated)
    assert div.kind == "counters"
    assert div.fields[0][0] == "dropped_commands"
    text = render(div, "A", "B")
    assert "span lists identical" in text

    mutated = copy.deepcopy(trace)
    mutated["attribution"] = dict(mutated["attribution"], dqm_ps=0)
    assert first_divergence(trace, mutated).kind == "attribution"


def test_schema_divergence_short_circuits(trace):
    other = dict(copy.deepcopy(trace), schema=2)
    div = first_divergence(trace, other)
    assert div.kind == "schema"
    assert div.fields == (("schema", trace["schema"], 2),)


def test_divergence_at_origin_has_clipped_context(trace):
    mutated = copy.deepcopy(trace)
    mutated["spans"][0]["seq"] += 100
    div = first_divergence(trace, mutated, context=3)
    assert div.index == 0 and div.context_start == 0
    assert len(div.context_a) == 4


def test_divergence_is_frozen():
    with pytest.raises(AttributeError):
        Divergence(kind="spans").kind = "other"
