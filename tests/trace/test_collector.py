"""Unit coverage of the span tracer fold (spec, truncation, state)."""

import pytest

from repro.core.commands import CommandType
from repro.trace import TraceCollector, TraceSnapshot, TraceSpec
from repro.trace.spans import validate_trace_dict


class _Drop:
    """Structural stand-in for a rejected enqueue's DroppedSegment."""

    def __init__(self, reason):
        self.reason = reason


def _feed(tracer, n=4, drop_at=(), data=True):
    """n dispatches + completions with simple synthetic bounds."""
    for seq in range(n):
        result = _Drop("test: full") if seq in drop_at else object()
        tracer.on_command(1000 * seq, CommandType.ENQUEUE, seq % 2,
                          result, seq, 2 * seq)
    for seq in range(n):
        submit = 1000 * seq
        start = submit + 100
        end = start + 50
        dsub = end if data else -1
        ddone = end + 300 if data else -1
        tracer.on_stages(ddone if data else end, seq,
                         CommandType.ENQUEUE, seq % 2,
                         submit, start, end, dsub, ddone)


def test_spec_rejects_negative_cap():
    with pytest.raises(ValueError):
        TraceSpec(max_spans=-1)


def test_fold_counters_and_attribution():
    tracer = TraceCollector(TraceSpec())
    _feed(tracer, n=4, drop_at=(2,))
    snap = tracer.snapshot()
    c = snap.counters
    assert c["dispatched"] == 4 and c["completed"] == 4
    assert c["by_op"] == {"enqueue": 4}
    assert c["dropped_commands"] == 1
    assert c["drops_by_reason"] == {"test: full": 1}
    # 3 stages per command (fifo + execute + data)
    assert c["spans"] == 12 and len(snap.spans) == 12
    a = snap.attribution
    assert a["fifo_ps"] == 4 * 100
    assert a["dqm_ps"] == 4 * 50
    assert a["dmc_ddr_ps"] == 4 * 300
    assert a["total_ps"] == 4 * 450  # submit .. data_done
    assert a["shares"]["fifo"] == a["fifo_ps"] / a["total_ps"]
    assert validate_trace_dict(snap.to_dict()) == []


def test_span_rows_join_dispatch_verdicts():
    tracer = TraceCollector(TraceSpec())
    _feed(tracer, n=3, drop_at=(1,))
    spans = tracer.snapshot().spans
    by_id = {s["id"]: s for s in spans}
    assert by_id["0/fifo"]["verdict"] == "accept"
    assert by_id["1/execute"]["verdict"] == "drop:test: full"
    assert by_id["2/data"]["begin_ps"] < by_id["2/data"]["end_ps"]
    # snapshot order: dispatch seq, then within-command stage order
    assert [s["id"] for s in spans[:3]] == ["0/fifo", "0/execute",
                                            "0/data"]


def test_pointer_only_commands_skip_fifo_and_data_spans():
    tracer = TraceCollector(TraceSpec())
    tracer.on_command(0, CommandType.MOVE, 0, object(), 0, 0)
    tracer.on_stages(500, 0, CommandType.MOVE, 0,
                     -1, 400, 500, -1, -1)
    snap = tracer.snapshot()
    assert [s["stage"] for s in snap.spans] == ["execute"]
    assert snap.attribution["fifo_ps"] == 0
    assert snap.attribution["total_ps"] == 100  # start .. end


def test_truncation_caps_spans_not_attribution():
    capped = TraceCollector(TraceSpec(max_spans=2))
    full = TraceCollector(TraceSpec())
    _feed(capped, n=5)
    _feed(full, n=5)
    snap = capped.snapshot()
    assert snap.counters["truncated_commands"] == 3
    assert snap.counters["truncated_spans"] == 3
    assert {s["seq"] for s in snap.spans} == {0, 1}
    # the integer attribution keeps folding past the cap
    assert snap.attribution == full.snapshot().attribution
    assert validate_trace_dict(snap.to_dict()) == []


def test_state_round_trip_and_split_fold_identity():
    whole = TraceCollector(TraceSpec())
    _feed(whole, n=6, drop_at=(3,))

    split = TraceCollector(TraceSpec())
    _feed(split, n=3)
    resumed = TraceCollector(TraceSpec())
    resumed.load_state(split.state_dict())
    for seq in range(3, 6):
        result = _Drop("test: full") if seq == 3 else object()
        resumed.on_command(1000 * seq, CommandType.ENQUEUE, seq % 2,
                           result, seq, 2 * seq)
        submit = 1000 * seq
        resumed.on_stages(submit + 450, seq, CommandType.ENQUEUE,
                          seq % 2, submit, submit + 100, submit + 150,
                          submit + 150, submit + 450)
    assert resumed.snapshot().to_dict() == whole.snapshot().to_dict()


def test_load_state_rejects_mismatched_cap():
    tracer = TraceCollector(TraceSpec(max_spans=8))
    state = TraceCollector(TraceSpec()).state_dict()
    with pytest.raises(ValueError, match="max_spans"):
        tracer.load_state(state)


def test_snapshot_from_dict_validates():
    tracer = TraceCollector(TraceSpec())
    _feed(tracer, n=2)
    d = tracer.snapshot().to_dict()
    assert TraceSnapshot.from_dict(d).to_dict() == d
    bad = dict(d, counters=dict(d["counters"], spans=999))
    assert any("counters.spans" in p for p in validate_trace_dict(bad))
    with pytest.raises(ValueError):
        TraceSnapshot.from_dict(bad)
    mangled = dict(d, spans=[dict(d["spans"][0], stage="warp")]
                   + d["spans"][1:])
    assert any("unknown" in p for p in validate_trace_dict(mangled))
