"""Resume-identity for traces: split runs fold byte-identical spans.

The trace collector's fold state rides the checkpoint envelope (exact
snapshots on the stream path, replay re-accumulation on the kernel
path), so a run split at any rest point must produce a byte-identical
trace snapshot to an unbroken run -- the same contract the telemetry
fold already honors.
"""

import dataclasses
import json
import random

import pytest

from repro.checkpoint import (
    Checkpoint,
    CheckpointError,
    KernelRun,
    StreamRun,
    overload_params,
)
from repro.policies import PolicySpec
from repro.telemetry import TelemetrySpec
from repro.trace import TraceSpec

LATENCY_POLICIES = (
    PolicySpec("taildrop"),
    PolicySpec("red"),
    PolicySpec("dynamic-threshold", alpha=1.0),
    PolicySpec("lqd"),
)


def _cfg(policy):
    from repro.policies.harness import OVERLOAD_MMS_CFG
    return dataclasses.replace(OVERLOAD_MMS_CFG, policy=policy,
                               policy_seed=11, policy_records=True)


def _params(policy, **kw):
    return overload_params(_cfg(policy), "burst", num_arrivals=240,
                           active_flows=32, telemetry=TelemetrySpec(),
                           trace=TraceSpec(), **kw)


def _observed(run):
    """Result + telemetry + trace snapshots of a finished run."""
    result = run.finish()
    return (result,
            json.dumps(run.telemetry.snapshot().to_dict()),
            json.dumps(run.tracer.snapshot().to_dict()))


def _span(run):
    """A split point inside the active region (last occupancy
    sample)."""
    return run.telemetry.state_dict()["series"][-1][0]


@pytest.mark.parametrize("policy", LATENCY_POLICIES,
                         ids=lambda p: p.name)
def test_stream_split_trace_identical(policy):
    params = _params(policy)
    whole = StreamRun.fresh("overload", params)
    base = _observed(whole)
    assert whole.tracer.snapshot().counters["completed"] > 0
    span = _span(whole)
    rng = random.Random(hash(policy.name) & 0xFFFF)
    for _ in range(2):
        run = StreamRun.fresh("overload", params)
        run.run(rng.randrange(1, span))
        blob = run.checkpoint().to_json()
        resumed = StreamRun.resume(Checkpoint.from_json(blob))
        assert _observed(resumed) == base


@pytest.mark.parametrize("policy", LATENCY_POLICIES[::3],
                         ids=lambda p: p.name)
def test_kernel_split_trace_identical(policy):
    params = _params(policy, engine_label="reference")
    whole = KernelRun.fresh("overload", params)
    base = _observed(whole)
    span = _span(whole)
    run = KernelRun.fresh("overload", params)
    run.run(random.Random(len(policy.name)).randrange(1, span))
    blob = run.checkpoint().to_json()
    resumed = KernelRun.resume(Checkpoint.from_json(blob))
    assert _observed(resumed) == base


def test_kernel_and_stream_split_traces_agree():
    """The resumed runs of the two engines still agree with each
    other (trace identity survives both checkpoint disciplines)."""
    policy = PolicySpec("lqd")
    s_run = StreamRun.fresh("overload", _params(policy))
    k_run = KernelRun.fresh("overload",
                            _params(policy, engine_label="reference"))
    split = _span_of_fresh(policy) // 2
    s_run.run(split)
    k_run.run(split)
    s_resumed = StreamRun.resume(
        Checkpoint.from_json(s_run.checkpoint().to_json()))
    k_resumed = KernelRun.resume(
        Checkpoint.from_json(k_run.checkpoint().to_json()))
    s_resumed.finish()
    k_resumed.finish()
    assert json.dumps(s_resumed.tracer.snapshot().to_dict()) == \
        json.dumps(k_resumed.tracer.snapshot().to_dict())


def _span_of_fresh(policy):
    run = StreamRun.fresh("overload", _params(policy))
    run.finish()
    return _span(run)


def test_checkpoint_and_params_must_agree_about_tracing():
    params = _params(PolicySpec("taildrop"))
    run = StreamRun.fresh("overload", params)
    run.run(1_000_000)
    ckpt = run.checkpoint()

    # params say traced, state says not
    state = dict(ckpt.state, trace=None)
    broken = Checkpoint(engine="stream", workload=ckpt.workload,
                        at_ps=ckpt.at_ps, params=ckpt.params,
                        state=state)
    with pytest.raises(CheckpointError, match="tracing"):
        StreamRun.resume(broken)

    # a pre-trace checkpoint (no "trace" key at all) resumes fine when
    # the params carry no trace spec either
    legacy_params = {k: v for k, v in ckpt.params.items()
                     if k != "trace"}
    legacy = StreamRun.fresh("overload", dict(legacy_params))
    legacy.run(1000)
    legacy_ckpt = legacy.checkpoint()
    legacy_state = {k: v for k, v in legacy_ckpt.state.items()
                    if k != "trace"}
    revived = StreamRun.resume(
        Checkpoint(engine="stream", workload=legacy_ckpt.workload,
                   at_ps=legacy_ckpt.at_ps, params=legacy_params,
                   state=legacy_state))
    assert revived.tracer is None
