"""Chrome trace-event export and trace extraction from CLI documents."""

import json
import os

import pytest

from repro.scenarios import Runner
from repro.trace.export import (
    export_chrome_trace,
    extract_traces,
    to_chrome_trace,
)


@pytest.fixture(scope="module")
def result():
    return Runner().run("latency-lqd-burst", fast=True, trace=True)


@pytest.fixture(scope="module")
def trace(result):
    return result.metrics["trace"]


def test_extract_from_raw_trace(trace):
    assert extract_traces(trace) == [("trace", trace)]
    assert extract_traces(trace, label="x")[0][0] == "x"


def test_extract_from_result_and_run_documents(result, trace):
    d = result.to_dict()
    assert extract_traces(d) == [("latency-lqd-burst", trace)]
    doc = {"schema": 1, "runs": [d, d]}
    assert [label for label, _t in extract_traces(doc)] == \
        ["latency-lqd-burst"] * 2
    env = {"schema": 1, "result": d}
    assert extract_traces(env) == [("latency-lqd-burst", trace)]


def test_extract_skips_untraced_runs(result):
    plain = Runner().run("latency-lqd-burst", fast=True).to_dict()
    doc = {"schema": 1, "runs": [plain, result.to_dict()]}
    assert len(extract_traces(doc)) == 1
    with pytest.raises(ValueError, match="no run in the document"):
        extract_traces({"schema": 1, "runs": [plain]})
    with pytest.raises(ValueError, match="carries no trace"):
        extract_traces(plain)


def test_per_load_traces_get_suffixed_labels(trace):
    fake = {"schema": 1, "scenario": "t5", "engine": "fast",
            "seed": 1, "budget": "fast", "wall_clock_s": 0.0,
            "paper_deltas": {}, "blocks": [],
            "metrics": {"trace": {"load2": trace, "load1": trace}}}
    labels = [label for label, _t in extract_traces(fake)]
    assert labels == ["t5/load1", "t5/load2"]


def test_chrome_trace_structure(trace):
    doc = to_chrome_trace(trace, process_name="unit")
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in meta} == {"process_name", "thread_name"}
    assert meta[0]["args"]["name"] == "unit"
    assert len(spans) == trace["counters"]["spans"]
    by_id = {s["id"]: s for s in trace["spans"]}
    for event in spans:
        span = by_id[event["args"]["id"]]
        assert event["cat"] == span["stage"]
        assert event["ts"] == span["begin_ps"] / 1e6
        assert event["dur"] == (span["end_ps"] - span["begin_ps"]) / 1e6
        assert event["dur"] >= 0
        assert event["args"]["begin_ps"] == span["begin_ps"]
    # one thread lane per stage
    assert {e["tid"] for e in spans} <= {0, 1, 2}
    assert doc["otherData"]["counters"] == trace["counters"]
    assert doc["otherData"]["attribution"] == trace["attribution"]


def test_chrome_trace_rejects_invalid_payload(trace):
    bad = dict(trace, spans=trace["spans"][:-1])  # breaks counters.spans
    with pytest.raises(ValueError, match="invalid trace payload"):
        to_chrome_trace(bad)


def test_export_writes_loadable_json(trace, tmp_path):
    path = os.path.join(tmp_path, "chrome.json")
    doc = export_chrome_trace(trace, path)
    with open(path, "r", encoding="utf-8") as fh:
        assert json.load(fh) == doc
