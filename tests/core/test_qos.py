"""Tests for the QoS egress schedulers (extension module)."""

import pytest

from repro.core import MMS, MmsConfig
from repro.core.qos import DeficitRoundRobin, StrictPriorityScheduler

CFG = MmsConfig(num_flows=16, num_segments=2048, num_descriptors=1024)


def fill(mms, flow, packets, segs=1, pid_base=0):
    for p in range(packets):
        for s in range(segs):
            mms.pqm.enqueue_segment(flow, eop=(s == segs - 1),
                                    pid=pid_base + p, index=s)

# ----------------------------------------------------- strict priority

def test_strict_priority_serves_high_first():
    mms = MMS(CFG)
    fill(mms, 0, 2)   # high
    fill(mms, 1, 2)   # low
    sched = StrictPriorityScheduler(mms, flows=[0, 1])
    flows = [sched.next_packet().flow for _ in range(4)]
    assert flows == [0, 0, 1, 1]
    assert sched.next_packet() is None

def test_strict_priority_preemption_between_packets():
    mms = MMS(CFG)
    fill(mms, 1, 2)
    sched = StrictPriorityScheduler(mms, flows=[0, 1])
    assert sched.next_packet().flow == 1
    fill(mms, 0, 1)  # high-priority packet arrives
    assert sched.next_packet().flow == 0

def test_strict_priority_validation():
    mms = MMS(CFG)
    with pytest.raises(ValueError):
        StrictPriorityScheduler(mms, flows=[])
    with pytest.raises(ValueError):
        StrictPriorityScheduler(mms, flows=[1, 1])

# ----------------------------------------------------------------- DRR

def test_drr_equal_weights_equal_bytes():
    mms = MMS(CFG)
    for flow in (0, 1):
        fill(mms, flow, 40, segs=1)  # 40 x 64 B each
    # quantum 128 = 2 packets per flow per round; 40 packets = 10 full
    # rounds, so the shares are exactly equal
    drr = DeficitRoundRobin(mms, flows=[0, 1], quantum_bytes=128)
    shares = drr.drain_fair_shares(40)
    assert shares[0] == shares[1]

def test_drr_weighted_shares():
    mms = MMS(CFG)
    for flow in (0, 1):
        fill(mms, flow, 60, segs=1)
    drr = DeficitRoundRobin(mms, flows=[0, 1], weights=[3.0, 1.0],
                            quantum_bytes=256)
    shares = drr.drain_fair_shares(40)
    assert shares[0] / shares[1] == pytest.approx(3.0, rel=0.35)

def test_drr_byte_fairness_with_mixed_packet_sizes():
    """Flow 0 sends big packets (5 segments), flow 1 small (1 segment):
    byte shares stay near equal even though packet counts differ."""
    mms = MMS(CFG)
    fill(mms, 0, 30, segs=5)   # 30 x 320 B
    fill(mms, 1, 60, segs=1)   # 60 x 64 B
    drr = DeficitRoundRobin(mms, flows=[0, 1], quantum_bytes=128)
    shares = drr.drain_fair_shares(48)  # both flows stay backlogged
    # +-1 packet of the 320 B flow is a large fraction of a short
    # window; long-run fairness is byte-exact (see equal-weights test)
    assert shares[0] == pytest.approx(shares[1], rel=0.35)
    # byte-fair, not packet-fair: the small-packet flow gets far more
    # packets through
    packets_1 = shares[1] // 64
    packets_0 = shares[0] // 320
    assert packets_1 > 3 * packets_0

def test_drr_serves_everything_to_completion():
    mms = MMS(CFG)
    fill(mms, 0, 3, segs=2)
    fill(mms, 2, 2, segs=1)
    drr = DeficitRoundRobin(mms, flows=[0, 1, 2])
    served = 0
    while drr.next_packet() is not None:
        served += 1
    assert served == 5
    assert mms.pqm.queued_segments(0) == 0
    assert mms.pqm.queued_segments(2) == 0

def test_drr_idle_flow_loses_deficit():
    mms = MMS(CFG)
    fill(mms, 0, 1, segs=1)
    drr = DeficitRoundRobin(mms, flows=[0, 1], quantum_bytes=10_000)
    drr.next_packet()
    assert drr._deficit[1] == 0.0  # flow 1 never backlogged: no credit

def test_drr_validation():
    mms = MMS(CFG)
    with pytest.raises(ValueError):
        DeficitRoundRobin(mms, flows=[])
    with pytest.raises(ValueError):
        DeficitRoundRobin(mms, flows=[0, 0])
    with pytest.raises(ValueError):
        DeficitRoundRobin(mms, flows=[0], weights=[1, 2])
    with pytest.raises(ValueError):
        DeficitRoundRobin(mms, flows=[0], weights=[0.0])
    with pytest.raises(ValueError):
        DeficitRoundRobin(mms, flows=[0], quantum_bytes=10)
