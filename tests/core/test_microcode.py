"""Tests tying the microcode schedules to Table 4 and to the real
data-structure access traces."""

import pytest

from repro.core import MICROCODE, TABLE4_CYCLES, CommandType, table4_command_types
from repro.core.microcode import Microcode
from repro.queueing import PacketQueueManager


def test_every_command_type_has_microcode():
    for t in CommandType:
        assert t in MICROCODE

def test_schedule_lengths_reproduce_table4_exactly():
    """The headline contract: all nine published latencies."""
    for t, want in TABLE4_CYCLES.items():
        assert MICROCODE[t].latency_cycles == want, t

def test_table4_order_and_coverage():
    assert len(table4_command_types()) == 9

def test_mean_of_enqueue_dequeue_is_10_5():
    """Table 5's constant execution delay: the enqueue/dequeue mix."""
    mean = (MICROCODE[CommandType.ENQUEUE].latency_cycles
            + MICROCODE[CommandType.DEQUEUE].latency_cycles) / 2
    assert mean == 10.5

def test_processing_rate_is_12_mops_at_125mhz():
    """'The MMS can handle one operation per 84 ns or 12 Mops/sec'."""
    mean_cycles = 10.5
    ns_per_op = mean_cycles * 8  # 125 MHz
    assert ns_per_op == 84.0
    mops = 1e3 / ns_per_op
    assert mops == pytest.approx(11.9, abs=0.1)

def test_all_schedules_start_with_decode():
    for mc in MICROCODE.values():
        assert mc.steps[0] == "decode"

def test_data_commands_have_dmc_handoff():
    for t in (CommandType.ENQUEUE, CommandType.DEQUEUE, CommandType.READ,
              CommandType.OVERWRITE, CommandType.OVERWRITE_MOVE):
        assert MICROCODE[t].has_dmc_handoff, t

def test_pointer_only_commands_have_no_dmc_step():
    for t in (CommandType.DELETE, CommandType.MOVE,
              CommandType.OVERWRITE_LENGTH, CommandType.DELETE_PACKET,
              CommandType.OVERWRITE_LENGTH_MOVE):
        assert not MICROCODE[t].has_dmc_handoff, t

def test_first_ptr_access_is_early():
    """'a data access can start right after the first pointer memory
    access of each command': the first ptr step must come right after
    decode."""
    for mc in MICROCODE.values():
        assert mc.first_ptr_cycle == 1, mc.command

def test_invalid_step_kind_rejected():
    with pytest.raises(ValueError):
        Microcode(CommandType.ENQUEUE, ("decode", "teleport"))

def test_schedule_must_begin_with_decode():
    with pytest.raises(ValueError):
        Microcode(CommandType.ENQUEUE, ("ptr", "decode"))

# ---------------------------------------------------------- trace tie-in

def _typical_traces():
    """Typical-path access traces per command (the schedules' basis)."""
    m = PacketQueueManager(num_flows=8, num_segments=64, num_descriptors=32)

    def fill(flow, nsegs=1):
        for i in range(nsegs):
            m.enqueue_segment(flow, eop=(i == nsegs - 1), pid=flow, index=i)

    traces = {}
    # enqueue mid-packet (open packet continuation)
    m.enqueue_segment(0, eop=False)
    _slot, tr = m.enqueue_segment(0, eop=False)
    traces[CommandType.ENQUEUE] = tr
    # dequeue mid-packet
    fill(1, 3)
    _info, tr = m.dequeue_segment(1)
    traces[CommandType.DEQUEUE] = tr
    # read / overwrite / overwrite-length on a queued head
    fill(2, 1)
    _info, tr = m.read_segment(2)
    traces[CommandType.READ] = tr
    _info, tr = m.overwrite_segment(2)
    traces[CommandType.OVERWRITE] = tr
    _info, tr = m.overwrite_segment_length(2, 64)
    traces[CommandType.OVERWRITE_LENGTH] = tr
    # move with non-empty destination
    fill(3, 1)
    fill(4, 1)
    traces[CommandType.MOVE] = m.move_packet(3, 4)
    # delete one segment
    fill(5, 2)
    _info, tr = m.delete_segment(5)
    traces[CommandType.DELETE] = tr
    # combination commands (non-empty destination)
    fill(6, 1)
    traces[CommandType.OVERWRITE_LENGTH_MOVE] = \
        m.overwrite_length_and_move(2, 6, 64)
    fill(7, 1)
    _info, tr = m.overwrite_and_move(6, 7)
    traces[CommandType.OVERWRITE_MOVE] = tr
    return traces

def test_ptr_step_counts_match_functional_traces():
    """Every Table 4 schedule performs exactly the pointer accesses the
    real data structure needs on the command's typical path."""
    traces = _typical_traces()
    for t, trace in traces.items():
        assert MICROCODE[t].ptr_accesses == len(trace), (
            f"{t.value}: schedule has {MICROCODE[t].ptr_accesses} ptr steps, "
            f"structure performs {len(trace)} accesses"
        )
