"""Tests for the MMS command set."""

import pytest

from repro.core import Command, CommandType


def test_unique_cids():
    a = Command(type=CommandType.ENQUEUE, flow=0)
    b = Command(type=CommandType.ENQUEUE, flow=0)
    assert a.cid != b.cid

def test_move_requires_dst():
    with pytest.raises(ValueError):
        Command(type=CommandType.MOVE, flow=0)
    Command(type=CommandType.MOVE, flow=0, dst_flow=1)  # ok

def test_combination_commands_require_dst():
    for t in (CommandType.OVERWRITE_LENGTH_MOVE, CommandType.OVERWRITE_MOVE):
        with pytest.raises(ValueError):
            Command(type=t, flow=0)

def test_non_move_rejects_dst():
    with pytest.raises(ValueError):
        Command(type=CommandType.ENQUEUE, flow=0, dst_flow=1)

def test_validation_bounds():
    with pytest.raises(ValueError):
        Command(type=CommandType.ENQUEUE, flow=-1)
    with pytest.raises(ValueError):
        Command(type=CommandType.ENQUEUE, flow=0, length=0)
    with pytest.raises(ValueError):
        Command(type=CommandType.ENQUEUE, flow=0, length=65)

def test_data_direction_classification():
    assert Command(type=CommandType.ENQUEUE, flow=0).is_data_write
    assert Command(type=CommandType.ENQUEUE, flow=0).touches_data_memory
    deq = Command(type=CommandType.DEQUEUE, flow=0)
    assert deq.touches_data_memory
    assert not deq.is_data_write
    move = Command(type=CommandType.MOVE, flow=0, dst_flow=1)
    assert not move.touches_data_memory

def test_pointer_only_commands_have_no_data():
    for t in (CommandType.DELETE, CommandType.DELETE_PACKET,
              CommandType.OVERWRITE_LENGTH):
        assert not Command(type=t, flow=0).touches_data_memory
