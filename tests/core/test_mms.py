"""Integration tests for the assembled MMS (Tables 4/5 behaviours)."""

import pytest

from repro.core import MMS, Command, CommandType, MmsConfig, figure2_diagram
from repro.core.mms import run_load, run_saturation

SMALL = MmsConfig(num_flows=256, num_segments=2048, num_descriptors=1024,
                  strict_microcode=False)

def drive(mms, commands, port=0):
    """Submit commands and run to completion."""

    def feeder():
        for c in commands:
            yield from mms.submit(port, c)

    mms.sim.spawn(feeder(), name="feeder")
    mms.sim.run()

def test_single_enqueue_executes_with_table4_latency():
    mms = MMS(SMALL)
    c = Command(type=CommandType.ENQUEUE, flow=1)
    drive(mms, [c])
    assert mms.commands_executed == 1
    assert (c.end_exec_ps - c.start_exec_ps) == 10 * mms.clock.period_ps
    assert mms.pqm.queued_segments(1) == 1

def test_enqueue_dequeue_roundtrip_semantics():
    mms = MMS(SMALL)
    cmds = [
        Command(type=CommandType.ENQUEUE, flow=5, eop=True, pid=77),
        Command(type=CommandType.DEQUEUE, flow=5),
    ]
    drive(mms, cmds)
    assert mms.pqm.queued_segments(5) == 0
    assert cmds[1].result.pid == 77  # type: ignore[attr-defined]

def test_fifo_delay_measured_for_bursts():
    """Four simultaneous commands: the later ones wait in the FIFO."""
    mms = MMS(SMALL)
    cmds = [Command(type=CommandType.ENQUEUE, flow=i, eop=True)
            for i in range(2)]

    def feeder():
        for c in cmds:
            yield from mms.submit(0, c)

    mms.sim.spawn(feeder())
    mms.sim.run()
    assert mms.breakdown.count == 2
    # the second command waited roughly one execution latency
    assert mms.breakdown.fifo.maximum == pytest.approx(10, abs=2)

def test_data_delay_recorded_only_for_data_commands():
    mms = MMS(SMALL)
    drive(mms, [
        Command(type=CommandType.ENQUEUE, flow=1, eop=True),
        Command(type=CommandType.DELETE, flow=1),
    ])
    assert mms.breakdown.count == 2
    assert mms.breakdown.data.minimum == 0.0   # delete: no data access
    assert mms.breakdown.data.maximum > 10     # enqueue: real data write

def test_execution_is_serialized():
    """One command at a time: N enqueues finish no faster than N x 10."""
    mms = MMS(SMALL)
    cmds = [Command(type=CommandType.ENQUEUE, flow=i % 8, eop=True)
            for i in range(10)]
    drive(mms, cmds)
    last_end = max(c.end_exec_ps for c in cmds)
    assert last_end >= 10 * 10 * mms.clock.period_ps

def test_strict_microcode_on_typical_paths():
    """With strict checking on, mid-packet enqueues and dequeues agree
    with the schedules."""
    cfg = MmsConfig(num_flows=64, num_segments=512, num_descriptors=256,
                    strict_microcode=True)
    mms = MMS(cfg)
    # multi-segment packets so the dequeues stay mid-packet (typical path)
    mms.prefill(range(4), packets_per_flow=1, segments_per_packet=3)
    cmds = [Command(type=CommandType.DEQUEUE, flow=0),
            Command(type=CommandType.DEQUEUE, flow=1)]
    drive(mms, cmds)
    assert mms.commands_executed == 2

def test_all_table4_commands_execute_end_to_end():
    mms = MMS(SMALL)
    mms.prefill(range(8), packets_per_flow=3)
    cmds = [
        Command(type=CommandType.ENQUEUE, flow=0, eop=True),
        Command(type=CommandType.READ, flow=1),
        Command(type=CommandType.OVERWRITE, flow=1),
        Command(type=CommandType.MOVE, flow=2, dst_flow=3),
        Command(type=CommandType.DELETE, flow=4),
        Command(type=CommandType.OVERWRITE_LENGTH, flow=1, length=40),
        Command(type=CommandType.DEQUEUE, flow=5),
        Command(type=CommandType.OVERWRITE_LENGTH_MOVE, flow=6, dst_flow=7,
                length=32),
        Command(type=CommandType.OVERWRITE_MOVE, flow=7, dst_flow=0),
    ]
    drive(mms, cmds)
    assert mms.commands_executed == 9

def test_conservation_through_mixed_workload():
    mms = MMS(SMALL)
    mms.prefill(range(16), packets_per_flow=2)
    total = mms.pqm.free_segments + sum(
        mms.pqm.queued_segments(f) for f in range(16))
    cmds = []
    for i in range(40):
        cmds.append(Command(type=CommandType.ENQUEUE, flow=i % 16, eop=True))
        cmds.append(Command(type=CommandType.DEQUEUE, flow=i % 16))
    drive(mms, cmds)
    after = mms.pqm.free_segments + sum(
        mms.pqm.queued_segments(f) for f in range(16))
    assert after == total

def test_submit_and_wait_returns_functional_result():
    mms = MMS(SMALL)
    mms.prefill(range(2), packets_per_flow=1)
    results = []

    def client():
        cmd = Command(type=CommandType.DEQUEUE, flow=0)
        info = yield from mms.submit_and_wait(0, cmd)
        results.append((mms.sim.now, info))

    mms.sim.spawn(client())
    mms.sim.run()
    (when, info), = results
    assert info.eop
    # the wait covers the 11-cycle dequeue execution
    assert when >= 11 * mms.clock.period_ps

def test_submit_and_wait_serializes_dependent_commands():
    """A client that round-trips each command sees them execute in
    program order with at least the Table 4 spacing."""
    mms = MMS(SMALL)
    times = []

    def client():
        for i in range(3):
            cmd = Command(type=CommandType.ENQUEUE, flow=1, eop=True)
            yield from mms.submit_and_wait(0, cmd)
            times.append(mms.sim.now)

    mms.sim.spawn(client())
    mms.sim.run()
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g >= 10 * mms.clock.period_ps for g in gaps)
    assert mms.pqm.queued_packets(1) == 3

def test_figure2_diagram_mentions_all_blocks():
    art = figure2_diagram()
    for block in ("DMC", "Queue", "Internal", "Scheduler", "Segmenta",
                  "Reassem", "DRAM", "SRAM", "BACKPRESSURE"):
        assert block in art

# ------------------------------------------------------ load experiments

LOAD_CFG = MmsConfig(num_flows=1024, num_segments=8192, num_descriptors=4096)

def test_saturation_matches_headline():
    """~12 Mops and ~6.1 Gbps at 125 MHz (paper: 12 Mops / 6.145 Gbps)."""
    r = run_saturation(num_commands=2000, config=LOAD_CFG)
    assert r.achieved_mops == pytest.approx(11.9, rel=0.03)
    assert r.achieved_gbps == pytest.approx(6.1, rel=0.03)

def test_execution_delay_constant_10_5():
    r = run_load(3.2, num_volleys=600, config=LOAD_CFG, warmup_volleys=100)
    assert r.execution_cycles == pytest.approx(10.5, abs=0.01)

def test_low_load_row_matches_table5():
    """1.6 Gbps row: 20 / 10.5 / 28 / 58.5."""
    r = run_load(1.6, num_volleys=800, config=LOAD_CFG, warmup_volleys=100)
    assert r.fifo_cycles == pytest.approx(20, abs=4)
    assert r.data_cycles == pytest.approx(28, abs=3.5)
    assert r.total_cycles == pytest.approx(58.5, abs=6)

def test_delays_grow_with_load():
    lo = run_load(1.6, num_volleys=600, config=LOAD_CFG, warmup_volleys=100)
    hi = run_load(6.14, num_volleys=600, config=LOAD_CFG, warmup_volleys=100)
    assert hi.fifo_cycles > lo.fifo_cycles * 1.5
    assert hi.data_cycles > lo.data_cycles
    assert hi.total_cycles > lo.total_cycles + 10

def test_throughput_tracks_offered_below_capacity():
    r = run_load(3.2, num_volleys=800, config=LOAD_CFG, warmup_volleys=100)
    assert r.achieved_gbps == pytest.approx(3.2, rel=0.15)

def test_load_validation():
    with pytest.raises(ValueError):
        run_load(0)
    with pytest.raises(ValueError):
        run_load(1.0, active_flows=2)
    with pytest.raises(ValueError):
        run_load(1.0, burst_prob=1.5)
    with pytest.raises(ValueError):
        run_load(1.0, burst_len=0)

def test_config_validation():
    with pytest.raises(ValueError):
        MmsConfig(clock_mhz=0)
    with pytest.raises(ValueError):
        MmsConfig(num_flows=0)

def test_run_load_engines_trace_identical():
    """The uniform engine knob: calendar vs heapq kernel, same results."""
    kw = dict(num_volleys=200, config=LOAD_CFG, warmup_volleys=40)
    fast = run_load(3.2, engine="fast", **kw)
    ref = run_load(3.2, engine="reference", **kw)
    assert fast.engine == "fast" and ref.engine == "reference"
    assert (fast.fifo_cycles, fast.execution_cycles, fast.data_cycles,
            fast.end_to_end_cycles, fast.completed_ops, fast.elapsed_ps) \
        == (ref.fifo_cycles, ref.execution_cycles, ref.data_cycles,
            ref.end_to_end_cycles, ref.completed_ops, ref.elapsed_ps)

def test_run_saturation_engines_trace_identical():
    fast = run_saturation(num_commands=800, config=LOAD_CFG, engine="fast")
    ref = run_saturation(num_commands=800, config=LOAD_CFG,
                         engine="reference")
    assert (fast.completed_ops, fast.elapsed_ps) \
        == (ref.completed_ops, ref.elapsed_ps)

def test_run_load_rejects_unknown_engine():
    with pytest.raises(ValueError):
        run_load(1.0, num_volleys=10, config=LOAD_CFG, engine="turbo")
