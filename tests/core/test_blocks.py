"""Tests for the individual MMS blocks: scheduler, DMC, segmentation,
reassembly, latency records."""

import pytest

from repro.core import (
    Command,
    CommandType,
    DataMemoryController,
    InternalScheduler,
    PortConfig,
    ReassemblyBlock,
    SegmentationBlock,
)
from repro.core.latency import CommandLatency, LatencyBreakdown
from repro.net import Packet
from repro.queueing.packet_queues import SegmentInfo
from repro.sim import Clock, Simulator

# ----------------------------------------------------------- scheduler

def make_sched(depths=(2, 2), priorities=(0, 0)):
    sim = Simulator()
    ports = tuple(
        PortConfig(f"p{i}", priority=pr, fifo_depth=d)
        for i, (d, pr) in enumerate(zip(depths, priorities))
    )
    return sim, InternalScheduler(sim, ports)

def cmd(flow=0):
    return Command(type=CommandType.ENQUEUE, flow=flow)

def test_scheduler_round_robin_same_priority():
    sim, s = make_sched()
    a, b, c = cmd(1), cmd(2), cmd(3)
    s.try_submit(0, a)
    s.try_submit(0, b)
    s.try_submit(1, c)
    order = [s.pop_next() for _ in range(3)]
    assert order == [a, c, b]  # alternates between the two ports

def test_scheduler_strict_priority():
    sim, s = make_sched(priorities=(1, 0))  # port1 outranks port0
    low, high = cmd(1), cmd(2)
    s.try_submit(0, low)
    s.try_submit(1, high)
    assert s.pop_next() is high
    assert s.pop_next() is low

def test_try_submit_full_fifo_returns_false():
    sim, s = make_sched(depths=(1, 1))
    assert s.try_submit(0, cmd())
    assert not s.try_submit(0, cmd())

def test_blocking_submit_applies_backpressure():
    sim, s = make_sched(depths=(1, 1))
    done = []

    def feeder():
        yield from s.submit(0, cmd(1))
        yield from s.submit(0, cmd(2))  # blocks until a slot frees
        done.append(sim.now)

    def drainer():
        yield 1000
        s.pop_next()

    sim.spawn(feeder())
    sim.spawn(drainer())
    sim.run()
    assert done == [1000]

def test_pop_empty_raises():
    _sim, s = make_sched()
    with pytest.raises(RuntimeError):
        s.pop_next()

def test_port_index_lookup():
    _sim, s = make_sched()
    assert s.port_index("p1") == 1
    with pytest.raises(ValueError):
        s.port_index("nope")

def test_port_validation():
    _sim, s = make_sched()
    with pytest.raises(ValueError):
        s.try_submit(5, cmd())
    with pytest.raises(ValueError):
        PortConfig("x", fifo_depth=0)

def test_empty_port_list_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        InternalScheduler(sim, ())

def test_submit_stamps_time():
    sim, s = make_sched()
    c = cmd()
    s.try_submit(0, c)
    assert c.submit_ps == 0
    assert c.port == 0

# ----------------------------------------------------------------- DMC

def test_dmc_bank_striping():
    sim = Simulator()
    dmc = DataMemoryController(sim, Clock(125), num_banks=8)
    assert dmc.bank_of_slot(0) == 0
    assert dmc.bank_of_slot(9) == 1
    assert dmc.bank_of_slot(15) == 7
    with pytest.raises(ValueError):
        dmc.bank_of_slot(-1)

def test_dmc_write_completes_with_pipeline_delay():
    sim = Simulator()
    clock = Clock(125)
    dmc = DataMemoryController(sim, clock, pipeline_overhead_ns=135)
    seen = []

    def client():
        req = yield dmc.submit(True, slot=0)
        seen.append((sim.now, req))

    sim.spawn(client())
    sim.run()
    # write: 40 ns device + 135 ns pipeline
    assert seen[0][0] == (40 + 135) * 1000
    assert dmc.completed == 1

def test_dmc_read_slower_than_write():
    def one(is_write):
        sim = Simulator()
        dmc = DataMemoryController(sim, Clock(125))
        times = []

        def client():
            req = yield dmc.submit(is_write, slot=0)
            times.append(req.total_ps)

        sim.spawn(client())
        sim.run()
        return times[0]

    assert one(is_write=False) > one(is_write=True)

def test_dmc_mean_delay_cycles():
    sim = Simulator()
    clock = Clock(125)
    dmc = DataMemoryController(sim, clock, pipeline_overhead_ns=135)

    def client():
        for i in range(8):
            yield dmc.submit(True, slot=i)

    sim.spawn(client())
    sim.run()
    # 175 ns write latency plus up to one 40 ns access-cycle alignment
    mean = dmc.mean_data_delay_cycles()
    assert (40 + 135) / 8.0 <= mean <= (40 + 135 + 40) / 8.0

# ---------------------------------------------------------- segmentation

def test_segmentation_single_segment_packet():
    seg = SegmentationBlock(num_flows=8)
    cmds = seg.segment(Packet(64, flow_id=3))
    assert len(cmds) == 1
    assert cmds[0].type is CommandType.ENQUEUE
    assert cmds[0].eop
    assert cmds[0].length == 64
    assert cmds[0].flow == 3

def test_segmentation_multi_segment_lengths_and_eop():
    seg = SegmentationBlock(num_flows=8)
    cmds = seg.segment(Packet(150, flow_id=1))
    assert [c.length for c in cmds] == [64, 64, 22]
    assert [c.eop for c in cmds] == [False, False, True]
    assert [c.seg_index for c in cmds] == [0, 1, 2]
    assert len({c.pid for c in cmds}) == 1

def test_segmentation_counters():
    seg = SegmentationBlock(num_flows=8)
    seg.segment(Packet(128, flow_id=0))
    seg.segment(Packet(64, flow_id=1))
    assert seg.packets_segmented == 2
    assert seg.segments_produced == 3

def test_segmentation_flow_bounds():
    seg = SegmentationBlock(num_flows=2)
    with pytest.raises(ValueError):
        seg.segment(Packet(64, flow_id=2))
    with pytest.raises(ValueError):
        SegmentationBlock(0)

# ----------------------------------------------------------- reassembly

def info(slot, eop, length=64, pid=1, index=0):
    return SegmentInfo(slot=slot, eop=eop, length=length, pid=pid, index=index)

def test_reassembly_emits_on_eop():
    r = ReassemblyBlock()
    assert r.feed(0, info(1, eop=False)) is None
    pkt = r.feed(0, info(2, eop=True, length=30))
    assert pkt is not None
    assert pkt.num_segments == 2
    assert pkt.length_bytes == 64 + 30
    assert pkt.flow == 0

def test_reassembly_interleaved_flows():
    r = ReassemblyBlock()
    r.feed(0, info(1, eop=False, pid=10))
    r.feed(1, info(2, eop=False, pid=20))
    assert sorted(r.open_flows()) == [0, 1]
    a = r.feed(1, info(3, eop=True, pid=20))
    b = r.feed(0, info(4, eop=True, pid=10))
    assert a.pid == 20
    assert b.pid == 10
    assert r.open_flows() == []
    assert r.packets_reassembled == 2
    assert r.segments_consumed == 4

def test_reassembly_inverse_of_segmentation():
    """segmentation -> reassembly is the identity on packet shape."""
    seg = SegmentationBlock(num_flows=4)
    r = ReassemblyBlock()
    pkt = Packet(1500, flow_id=2)
    cmds = seg.segment(pkt)
    out = None
    for i, c in enumerate(cmds):
        out = r.feed(c.flow, info(slot=i, eop=c.eop, length=c.length,
                                  pid=c.pid, index=c.seg_index))
    assert out is not None
    assert out.length_bytes == pkt.length_bytes
    assert out.num_segments == pkt.num_segments
    assert out.pid == pkt.pid

# -------------------------------------------------------------- latency

def test_latency_total_is_additive():
    lat = CommandLatency(cid=1, fifo_cycles=20, execution_cycles=10.5,
                         data_cycles=28)
    assert lat.total_cycles == pytest.approx(58.5)

def test_breakdown_row_means():
    bd = LatencyBreakdown(Clock(125))
    bd.record(CommandLatency(1, 10, 10, 30))
    bd.record(CommandLatency(2, 30, 11, 26))
    row = bd.row()
    assert row["fifo"] == pytest.approx(20)
    assert row["execution"] == pytest.approx(10.5)
    assert row["data"] == pytest.approx(28)
    assert row["total"] == pytest.approx(58.5)
    assert bd.count == 2
