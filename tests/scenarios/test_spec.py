"""Tests for the declarative scenario specifications."""

import dataclasses

import pytest

from repro.core.mms import MmsConfig
from repro.scenarios import ScenarioSpec, TrafficSpec


def _spec(**kw):
    base = dict(name="demo", kind="table", title="Demo", workload="ddr",
                supports=frozenset({"engine", "seed", "budget"}))
    base.update(kw)
    if "fastpath" not in kw:
        # keep the helper consistent with the engine-knob invariant
        base["fastpath"] = "kernel" if "engine" in base["supports"] \
            else "none"
    return ScenarioSpec(**base)


def test_spec_is_frozen():
    spec = _spec()
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.engine = "reference"


def test_spec_rejects_unknown_engine():
    with pytest.raises(ValueError, match="engine"):
        _spec(engine="warp")


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="kind"):
        _spec(kind="poster")


def test_spec_rejects_unknown_budget():
    with pytest.raises(ValueError, match="budget"):
        _spec(budget="leisurely")


def test_spec_rejects_unknown_supports():
    with pytest.raises(ValueError, match="supports"):
        _spec(supports=frozenset({"engine", "turbo"}))


def test_spec_rejects_empty_name():
    with pytest.raises(ValueError, match="name"):
        _spec(name="")


def test_pick_resolves_budget_pairs():
    spec = _spec(traffic=TrafficSpec(num_accesses=(100, 10)))
    assert spec.pick(spec.traffic.num_accesses) == 100
    fast = dataclasses.replace(spec, budget="fast")
    assert fast.pick(fast.traffic.num_accesses) == 10


def test_with_options_applies_supported_knobs():
    spec = _spec()
    out = spec.with_options(engine="reference", seed=7, budget="fast")
    assert (out.engine, out.seed, out.budget) == ("reference", 7, "fast")
    # the original is untouched
    assert (spec.engine, spec.seed, spec.budget) == ("fast", 2005, "full")


def test_with_options_ignores_unsupported_knobs():
    spec = _spec(supports=frozenset())
    out = spec.with_options(engine="reference", seed=7, budget="fast",
                            mms=MmsConfig(num_flows=4, num_segments=4,
                                          num_descriptors=4))
    assert out is spec


def test_with_options_rejects_unknown_engine_even_when_unsupported():
    """A typo must fail loudly, not be silently ignored."""
    for supports in (frozenset(), frozenset({"engine"})):
        spec = _spec(supports=supports)
        with pytest.raises(ValueError, match="engine"):
            spec.with_options(engine="warp")


def test_with_options_rejects_unknown_budget_even_when_unsupported():
    for supports in (frozenset(), frozenset({"budget"})):
        spec = _spec(supports=supports)
        with pytest.raises(ValueError, match="budget"):
            spec.with_options(budget="leisurely")


def test_spec_accepts_overload_kind_and_policy():
    from repro.policies import PolicySpec
    spec = _spec(kind="overload", policy=PolicySpec(name="lqd"))
    assert spec.kind == "overload"
    assert spec.policy.name == "lqd"


def test_with_options_none_is_identity():
    spec = _spec()
    assert spec.with_options() is spec


def test_effective_engine_for_closed_form():
    assert _spec().effective_engine == "fast"
    assert _spec(supports=frozenset()).effective_engine == "n/a"


# ------------------------------------------------- traffic pattern registry

def test_traffic_pattern_accepts_known_shapes_and_empty():
    from repro.policies.harness import SHAPES
    assert TrafficSpec().pattern == ""
    for shape in SHAPES:
        assert TrafficSpec(pattern=shape).pattern == shape


def test_traffic_pattern_rejects_typos_at_construction():
    with pytest.raises(ValueError, match="unknown traffic pattern"):
        TrafficSpec(pattern="bursty")
    # the error is helpful: it lists the registry of known shapes
    with pytest.raises(ValueError, match="burst.*sustained.*incast"):
        TrafficSpec(pattern="sustaned")


# ------------------------------------------------------- telemetry knob

def test_telemetry_requires_supports_declaration():
    from repro.telemetry import TelemetrySpec
    with pytest.raises(ValueError, match="telemetry"):
        _spec(telemetry=TelemetrySpec())
    spec = _spec(telemetry=TelemetrySpec(),
                 supports=frozenset({"engine", "telemetry"}))
    assert spec.telemetry is not None


def test_with_options_telemetry_turns_on_where_supported():
    from repro.telemetry import TelemetrySpec
    tele = TelemetrySpec(sample_every=8)
    on = _spec(supports=frozenset({"engine", "telemetry"})) \
        .with_options(telemetry=tele)
    assert on.telemetry is tele
    # unsupported scenarios ignore the knob (uniform `run all --telemetry`)
    off = _spec(supports=frozenset({"engine"})).with_options(telemetry=tele)
    assert off.telemetry is None
    # an explicit spec re-tunes always-on scenarios (overrides, like
    # every other supported knob); omitting the knob keeps their own
    own = _spec(telemetry=TelemetrySpec(),
                supports=frozenset({"engine", "telemetry"}))
    assert own.with_options(telemetry=tele).telemetry is tele
    assert own.with_options().telemetry == TelemetrySpec()


def test_with_options_rejects_non_spec_telemetry():
    spec = _spec(supports=frozenset({"engine", "telemetry"}))
    with pytest.raises(ValueError, match="TelemetrySpec"):
        spec.with_options(telemetry="yes")
