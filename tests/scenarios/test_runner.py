"""Runner behavior: knob threading, typed results, JSON round-trip, and
golden byte-identity of the deprecated ``run_tableN`` shims."""

import json

import pytest

from repro.analysis import experiments as legacy
from repro.scenarios import (
    Runner,
    RunResult,
    render,
    validate_result_dict,
)


# ------------------------------------------------------------- knobs

def test_engine_override_produces_identical_metrics():
    runner = Runner()
    fast = runner.run("table1", fast=True, engine="fast")
    ref = runner.run("table1", fast=True, engine="reference")
    assert fast.metrics == ref.metrics
    assert fast.engine == "fast" and ref.engine == "reference"


def test_seed_override_changes_simulated_values():
    runner = Runner()
    a = runner.run("ablation-history-depth", fast=True, seed=1)
    b = runner.run("ablation-history-depth", fast=True, seed=2)
    assert a.seed == 1 and b.seed == 2
    assert a.metrics != b.metrics


def test_budget_knob_recorded():
    r = Runner().run("ablation-history-depth", fast=True)
    assert r.budget == "fast"
    assert r.wall_clock_s > 0


def test_fast_and_budget_are_exclusive():
    with pytest.raises(ValueError, match="not both"):
        Runner().run("table4", fast=True, budget="full")


def test_closed_form_reports_na_engine():
    r = Runner().run("table4", engine="reference")
    assert r.engine == "n/a"


# ----------------------------------------------------- result round-trip

def test_runresult_json_round_trip_exact():
    for name in ("table3", "table4", "figure1"):
        r = Runner().run(name)
        again = RunResult.from_json(r.to_json())
        assert again == r
        assert render(again) == render(r)


def test_runresult_dict_is_schema_valid():
    r = Runner().run("table3")
    assert validate_result_dict(json.loads(r.to_json())) == []


def test_validate_result_dict_flags_problems():
    d = json.loads(Runner().run("table4").to_json())
    d["engine"] = "warp"
    del d["seed"]
    problems = validate_result_dict(d)
    assert any("engine" in p for p in problems)
    assert any("seed" in p for p in problems)


def test_from_json_rejects_unknown_engine():
    d = json.loads(Runner().run("table4").to_json())
    d["engine"] = "warp"
    with pytest.raises(ValueError, match="engine"):
        RunResult.from_dict(d)


def test_from_json_rejects_unknown_budget():
    d = json.loads(Runner().run("table4").to_json())
    d["budget"] = "leisurely"
    with pytest.raises(ValueError, match="budget"):
        RunResult.from_dict(d)


def test_from_json_rejects_unknown_scenario_name():
    d = json.loads(Runner().run("table4").to_json())
    d["scenario"] = "table9"
    with pytest.raises(ValueError, match="table9"):
        RunResult.from_dict(d)


def test_from_json_rejects_unknown_schema():
    d = json.loads(Runner().run("table4").to_json())
    d["schema"] = 99
    with pytest.raises(ValueError, match="schema"):
        RunResult.from_dict(d)


# ------------------------------------------- golden shim byte-identity

#: (legacy driver, scenario name, kwargs for both paths)
_GOLDEN = [
    (legacy.run_table1, "table1", dict(fast=True)),
    (legacy.run_table3, "table3", {}),
    (legacy.run_table4, "table4", {}),
    (legacy.run_figure1, "figure1", {}),
    (legacy.run_figure2, "figure2", {}),
]


@pytest.mark.parametrize("driver,name,kw", _GOLDEN,
                         ids=[g[1] for g in _GOLDEN])
def test_deprecated_driver_is_byte_identical(driver, name, kw):
    with pytest.warns(DeprecationWarning, match=f"run_{name}"):
        report = driver(**kw)
    direct = Runner().run(name, **kw)
    assert report.rendered == render(direct)
    assert report.values == direct.metrics


def test_deprecated_table5_with_config_matches_runner():
    from repro.core import MmsConfig
    cfg = MmsConfig(num_flows=1024, num_segments=8192, num_descriptors=4096)
    with pytest.warns(DeprecationWarning):
        report = legacy.run_table5(fast=True, config=cfg)
    direct = Runner().run("table5", fast=True, mms=cfg)
    assert report.rendered == render(direct)
    assert report.values == direct.metrics


def test_deprecated_drivers_thread_engine_and_seed():
    with pytest.warns(DeprecationWarning):
        a = legacy.run_table1(fast=True, seed=99, engine="reference")
    b = Runner().run("table1", fast=True, seed=99, engine="reference")
    assert a.rendered == render(b)
    assert b.seed == 99 and b.engine == "reference"
