"""Tests for the scenario registry and the catalog's coverage."""

import pytest

from repro.scenarios import (
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
    scenarios_of_kind,
)

#: Every published artifact the registry must cover.
EXPECTED = {
    # tables
    "table1", "table2", "table3", "table4", "table5",
    # figures + headline claims
    "figure1", "figure2", "headline",
    # sweeps
    "sweep-ddr-loss-banks", "sweep-ixp-rate-queues", "sweep-npu-rate-clock",
    "sweep-mms-delay-load", "sweep-ixp-cycles-closed-form",
    # ablations
    "ablation-history-depth", "ablation-rw-grouping", "ablation-fifo-depth",
    "ablation-overlap", "ablation-multithreading",
    # overload family (policy x traffic shape; beyond the paper)
    *(f"overload-{p}-{s}"
      for p in ("taildrop", "red", "dt", "lqd")
      for s in ("burst", "sustained", "incast")),
    # qos egress-scheduling family (beyond the paper)
    "qos-strict-priority", "qos-drr",
    # latency/telemetry family (policy x traffic shape; beyond the paper)
    *(f"latency-{p}-{s}"
      for p in ("taildrop", "red", "dt", "lqd")
      for s in ("burst", "sustained", "incast")),
}


def test_registry_covers_every_artifact():
    assert set(scenario_names()) == EXPECTED


def test_names_are_ordered_tables_first():
    names = scenario_names()
    assert names[:5] == ["table1", "table2", "table3", "table4", "table5"]


def test_kind_partition():
    assert {s.spec.name for s in scenarios_of_kind("table")} == {
        "table1", "table2", "table3", "table4", "table5"}
    assert {s.spec.name for s in scenarios_of_kind("sweep")} == {
        n for n in EXPECTED if n.startswith("sweep-")}
    assert {s.spec.name for s in scenarios_of_kind("ablation")} == {
        n for n in EXPECTED if n.startswith("ablation-")}
    assert {s.spec.name for s in scenarios_of_kind("overload")} == {
        n for n in EXPECTED if n.startswith("overload-")}
    assert {s.spec.name for s in scenarios_of_kind("latency")} == {
        n for n in EXPECTED if n.startswith("latency-")}


def test_specs_name_themselves():
    for name, scenario in all_scenarios().items():
        assert scenario.spec.name == name


def test_engine_support_matches_workload():
    """Only simulation workloads may declare an engine knob; structural
    and closed-form scenarios never do."""
    for name, scenario in all_scenarios().items():
        spec = scenario.spec
        if "engine" in spec.supports:
            assert spec.workload in ("ddr", "mms", "ixp", "mixed"), name
        if spec.workload in ("structural", "npu-sw") \
                or "closed-form" in name:
            assert "engine" not in spec.supports, name
    # the simulation-backed artifacts all expose the knob
    for name in ("table1", "table2", "table5", "headline",
                 "sweep-ddr-loss-banks", "sweep-mms-delay-load",
                 "ablation-multithreading"):
        assert "engine" in all_scenarios()[name].spec.supports, name


def test_get_scenario_unknown_name_lists_choices():
    with pytest.raises(KeyError, match="table1"):
        get_scenario("table9")


def test_duplicate_registration_rejected():
    spec = ScenarioSpec(name="table1", kind="table", title="dup",
                        workload="ddr")
    with pytest.raises(ValueError, match="already registered"):
        register_scenario(spec)(lambda s: None)
