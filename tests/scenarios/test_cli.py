"""CLI tests: list / run / sweep, JSON documents, legacy aliases."""

import json

import pytest

from repro.analysis.cli import build_parser, main
from repro.scenarios import scenario_names, validate_result_dict


def test_list_shows_every_scenario(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_list_filters_by_kind(capsys):
    assert main(["list", "--kind", "sweep"]) == 0
    out = capsys.readouterr().out
    assert "sweep-ddr-loss-banks" in out
    assert "table1" not in out


def test_run_single_scenario(capsys):
    assert main(["run", "table4"]) == 0
    assert "Table 4" in capsys.readouterr().out


def test_run_with_engine_and_seed_flags(capsys):
    rc = main(["run", "ablation-history-depth", "--fast",
               "--engine", "reference", "--seed", "7"])
    assert rc == 0
    assert "Ablation A1" in capsys.readouterr().out


def test_sweep_subcommand(capsys):
    assert main(["sweep", "sweep-npu-rate-clock"]) == 0
    assert "clock MHz" in capsys.readouterr().out


def test_sweep_rejects_non_sweep_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "table1"])


def test_legacy_positional_invocation_still_works(capsys):
    """`repro-experiments table4 --fast` predates the subcommands."""
    assert main(["table4", "--fast"]) == 0
    assert "Table 4" in capsys.readouterr().out


def test_legacy_option_first_invocation_still_works(capsys):
    """argparse used to accept options before the positional, too."""
    assert main(["--fast", "table4"]) == 0
    assert "Table 4" in capsys.readouterr().out


def test_run_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "table9"])


def test_engine_flag_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "table1", "--engine", "warp"])


def test_json_to_stdout(capsys):
    assert main(["run", "table4", "--quiet", "--json", "-"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1
    assert doc["runs"][0]["scenario"] == "table4"


def test_telemetry_flag_lands_snapshot_in_json(capsys):
    rc = main(["run", "overload-taildrop-burst", "--fast", "--quiet",
               "--telemetry", "--json", "-"])
    assert rc == 0
    run = json.loads(capsys.readouterr().out)["runs"][0]
    assert validate_result_dict(run) == []
    tele = run["metrics"]["telemetry"]
    assert tele["schema"] == 1
    assert tele["counters"]["commands"] > 0
    assert "enqueue.e2e" in tele["histograms"]


def test_telemetry_flag_ignored_by_closed_form_scenarios(capsys):
    rc = main(["run", "table4", "--quiet", "--telemetry", "--json", "-"])
    assert rc == 0
    run = json.loads(capsys.readouterr().out)["runs"][0]
    assert "telemetry" not in run["metrics"]


def test_run_all_fast_json_is_schema_valid_for_every_scenario(
        tmp_path, capsys):
    """The acceptance path: every registered scenario runs on the fast
    budget and serializes to a schema-valid document."""
    out = tmp_path / "runs.json"
    rc = main(["run", "all", "--fast", "--quiet", "--json", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == 1
    ran = [r["scenario"] for r in doc["runs"]]
    assert ran == scenario_names()
    for run in doc["runs"]:
        assert validate_result_dict(run) == [], run["scenario"]
        assert run["budget"] in ("fast", "full")  # full = no budget knob


def test_list_json_machine_readable(capsys):
    assert main(["list", "--kind", "qos", "--json", "-"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1
    names = [s["name"] for s in doc["scenarios"]]
    assert names == ["qos-drr", "qos-strict-priority"]
    for entry in doc["scenarios"]:
        assert set(entry) == {"name", "kind", "workload", "title",
                              "description", "supports", "fastpath",
                              "telemetry", "trace", "engine", "budget",
                              "seed"}


def test_list_json_reports_fastpath_capabilities(capsys):
    assert main(["list", "--json", "-"]) == 0
    doc = json.loads(capsys.readouterr().out)
    by_name = {s["name"]: s for s in doc["scenarios"]}
    assert len(by_name) == len(scenario_names())
    assert by_name["table5"]["fastpath"] == "stream"
    assert by_name["table1"]["fastpath"] == "bank"
    assert by_name["ablation-fifo-depth"]["fastpath"] == "kernel"
    assert by_name["table4"]["fastpath"] == "none"


def test_list_json_to_file(tmp_path):
    out = tmp_path / "listing.json"
    assert main(["list", "--kind", "table", "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert [s["name"] for s in doc["scenarios"]] == [
        "table1", "table2", "table3", "table4", "table5"]


def test_sweep_jobs_matches_serial(tmp_path):
    serial = tmp_path / "serial.json"
    parallel = tmp_path / "parallel.json"
    args = ["sweep", "sweep-npu-rate-clock", "--fast", "--quiet"]
    assert main(args + ["--json", str(serial)]) == 0
    assert main(args + ["--jobs", "2", "--json", str(parallel)]) == 0
    a = json.loads(serial.read_text())
    b = json.loads(parallel.read_text())

    def strip(doc):
        return [{k: v for k, v in run.items() if k != "wall_clock_s"}
                for run in doc["runs"]]

    assert strip(a) == strip(b)


def test_sweep_jobs_pool_keeps_scenario_order(tmp_path):
    out = tmp_path / "pool.json"
    assert main(["sweep", "all", "--fast", "--quiet", "--jobs", "3",
                 "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    names = [run["scenario"] for run in doc["runs"]]
    assert names == sorted(names) == [
        s for s in scenario_names() if s.startswith("sweep-")]
    for run in doc["runs"]:
        assert validate_result_dict(run) == []


def test_sweep_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        main(["sweep", "sweep-npu-rate-clock", "--jobs", "0"])
