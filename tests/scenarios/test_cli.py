"""CLI tests: list / run / sweep, JSON documents, legacy aliases."""

import json

import pytest

from repro.analysis.cli import build_parser, main
from repro.scenarios import scenario_names, validate_result_dict


def test_list_shows_every_scenario(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_list_filters_by_kind(capsys):
    assert main(["list", "--kind", "sweep"]) == 0
    out = capsys.readouterr().out
    assert "sweep-ddr-loss-banks" in out
    assert "table1" not in out


def test_run_single_scenario(capsys):
    assert main(["run", "table4"]) == 0
    assert "Table 4" in capsys.readouterr().out


def test_run_with_engine_and_seed_flags(capsys):
    rc = main(["run", "ablation-history-depth", "--fast",
               "--engine", "reference", "--seed", "7"])
    assert rc == 0
    assert "Ablation A1" in capsys.readouterr().out


def test_sweep_subcommand(capsys):
    assert main(["sweep", "sweep-npu-rate-clock"]) == 0
    assert "clock MHz" in capsys.readouterr().out


def test_sweep_rejects_non_sweep_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "table1"])


def test_legacy_positional_invocation_still_works(capsys):
    """`repro-experiments table4 --fast` predates the subcommands."""
    assert main(["table4", "--fast"]) == 0
    assert "Table 4" in capsys.readouterr().out


def test_legacy_option_first_invocation_still_works(capsys):
    """argparse used to accept options before the positional, too."""
    assert main(["--fast", "table4"]) == 0
    assert "Table 4" in capsys.readouterr().out


def test_run_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "table9"])


def test_engine_flag_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "table1", "--engine", "warp"])


def test_json_to_stdout(capsys):
    assert main(["run", "table4", "--quiet", "--json", "-"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1
    assert doc["runs"][0]["scenario"] == "table4"


def test_run_all_fast_json_is_schema_valid_for_every_scenario(
        tmp_path, capsys):
    """The acceptance path: every registered scenario runs on the fast
    budget and serializes to a schema-valid document."""
    out = tmp_path / "runs.json"
    rc = main(["run", "all", "--fast", "--quiet", "--json", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == 1
    ran = [r["scenario"] for r in doc["runs"]]
    assert ran == scenario_names()
    for run in doc["runs"]:
        assert validate_result_dict(run) == [], run["scenario"]
        assert run["budget"] in ("fast", "full")  # full = no budget knob
