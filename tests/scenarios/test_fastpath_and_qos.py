"""Capability flags (``ScenarioSpec.fastpath``) and the qos family."""

import dataclasses

import pytest

from repro.engines import stream_supports
from repro.scenarios import Runner, all_scenarios
from repro.scenarios.spec import FASTPATHS, ScenarioSpec


def test_fastpath_values_are_valid():
    for name, scenario in all_scenarios().items():
        assert scenario.spec.fastpath in FASTPATHS, name


def test_fastpath_none_iff_no_engine_knob():
    for name, scenario in all_scenarios().items():
        spec = scenario.spec
        assert (spec.fastpath == "none") == ("engine" not in spec.supports), \
            name


def test_stream_flagged_scenarios_are_claimed_by_the_machine():
    """A 'stream' flag is a promise: the scenario's MMS build must be
    accepted by stream_supports (no silent kernel fallback)."""
    for name, scenario in all_scenarios().items():
        spec = scenario.spec
        if spec.fastpath == "stream" or (spec.fastpath == "mixed"
                                         and spec.mms is not None):
            cfg = spec.mms
            if spec.policy is not None:
                cfg = dataclasses.replace(cfg, policy=spec.policy)
            assert stream_supports(cfg) is None, name


def test_kernel_flagged_mms_scenarios_are_rejected_by_the_machine():
    """ablation-fifo-depth is the declared fall-through example: its
    swept port arrangements are exactly what the machine refuses."""
    from repro.core.scheduler import PortConfig
    spec = all_scenarios()["ablation-fifo-depth"].spec
    assert spec.fastpath == "kernel"
    for depth in spec.sched.fifo_depths:
        ports = tuple(PortConfig(n, priority=0, fifo_depth=depth)
                      for n in ("in", "out", "cpu0", "cpu1"))
        cfg = dataclasses.replace(spec.mms, ports=ports)
        assert stream_supports(cfg) is not None


def test_spec_rejects_bad_fastpath_values():
    with pytest.raises(ValueError, match="fastpath"):
        ScenarioSpec(name="x", kind="table", title="t", workload="mms",
                     fastpath="warp")
    # engine knob without a fastpath declaration is inconsistent
    with pytest.raises(ValueError, match="fastpath"):
        ScenarioSpec(name="x", kind="table", title="t", workload="mms",
                     supports=frozenset({"engine"}))


# ---------------------------------------------------------- qos family

def test_qos_strict_priority_serves_classes_in_order():
    result = Runner().run("qos-strict-priority", fast=True)
    assert result.metrics["inversions"] == 0
    assert sum(result.metrics["packets"]) > 0
    assert result.engine == "n/a"


def test_qos_drr_shares_follow_weights():
    result = Runner().run("qos-drr", fast=True)
    served = result.metrics["bytes"]
    weights = result.metrics["weights"]
    assert all(b > 0 for b in served)
    # the weight-4 class must out-serve the weight-1 classes clearly
    assert served[0] > 2 * served[2]
    assert served[0] > 2 * served[3]
    assert weights == [4.0, 2.0, 1.0, 1.0]


def test_qos_scenarios_honor_the_seed_knob():
    runner = Runner()
    a = runner.run("qos-drr", fast=True, seed=1)
    b = runner.run("qos-drr", fast=True, seed=2)
    c = runner.run("qos-drr", fast=True, seed=1)
    assert a.metrics == c.metrics
    assert a.metrics != b.metrics
