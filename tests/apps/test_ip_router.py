"""Tests for the MMS-backed IP router and its LPM trie."""

import pytest

from repro.apps import IpRouter, RouteTable
from repro.apps.ip_router import parse_ipv4
from repro.net import Packet

# ------------------------------------------------------------------ LPM

def test_parse_ipv4():
    assert parse_ipv4("0.0.0.0") == 0
    assert parse_ipv4("10.0.0.1") == (10 << 24) | 1
    assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF
    with pytest.raises(ValueError):
        parse_ipv4("1.2.3")
    with pytest.raises(ValueError):
        parse_ipv4("1.2.3.256")

def test_longest_prefix_wins():
    t = RouteTable()
    t.add("10.0.0.0", 8, next_hop=1)
    t.add("10.1.0.0", 16, next_hop=2)
    t.add("10.1.2.0", 24, next_hop=3)
    assert t.lookup("10.9.9.9") == 1
    assert t.lookup("10.1.9.9") == 2
    assert t.lookup("10.1.2.3") == 3

def test_default_route():
    t = RouteTable()
    t.add("0.0.0.0", 0, next_hop=9)
    assert t.lookup("192.168.1.1") == 9

def test_no_route_returns_none():
    t = RouteTable()
    t.add("10.0.0.0", 8, next_hop=1)
    assert t.lookup("11.0.0.1") is None

def test_host_route():
    t = RouteTable()
    t.add("10.0.0.0", 8, next_hop=1)
    t.add("10.0.0.5", 32, next_hop=5)
    assert t.lookup("10.0.0.5") == 5
    assert t.lookup("10.0.0.6") == 1

def test_route_update_overwrites():
    t = RouteTable()
    t.add("10.0.0.0", 8, next_hop=1)
    t.add("10.0.0.0", 8, next_hop=2)
    assert t.lookup("10.1.1.1") == 2
    assert t.num_routes == 1

def test_route_validation():
    t = RouteTable()
    with pytest.raises(ValueError):
        t.add("10.0.0.0", 33, 1)
    with pytest.raises(ValueError):
        t.add("10.0.0.0", 8, -1)

# --------------------------------------------------------------- router

def ip_packet(dst, ttl=64, length=64):
    return Packet(length, fields={"dst_ip": dst, "ttl": ttl})

def make_router():
    r = IpRouter(num_next_hops=4)
    r.table.add("10.0.0.0", 8, next_hop=0)
    r.table.add("10.1.0.0", 16, next_hop=1)
    r.table.add("192.168.0.0", 16, next_hop=2)
    return r

def test_route_and_transmit():
    r = make_router()
    p = ip_packet("10.1.2.3")
    r.receive(p)
    routed, hop = r.route_one()
    assert hop == 1
    assert routed.fields["ttl"] == 63  # decremented
    out = r.transmit(1)
    assert out.pid == p.pid

def test_ttl_expiry_drops_whole_packet():
    r = make_router()
    r.receive(ip_packet("10.0.0.1", ttl=1, length=300))
    free_before = r.mms.pqm.free_segments
    _pkt, hop = r.route_one()
    assert hop is None
    assert r.stats().dropped_ttl == 1
    # all 5 segments of the 300-byte packet returned to the free list
    assert r.mms.pqm.free_segments == free_before + 5

def test_no_route_drops():
    r = make_router()
    r.receive(ip_packet("172.16.0.1"))
    _pkt, hop = r.route_one()
    assert hop is None
    assert r.stats().dropped_no_route == 1

def test_route_all_processes_backlog():
    r = make_router()
    for i in range(10):
        r.receive(ip_packet("10.0.0.1"))
    assert r.route_all() == 10
    assert r.stats().routed == 10

def test_route_one_empty_returns_none():
    r = make_router()
    assert r.route_one() is None
    assert r.transmit(0) is None

def test_per_hop_fifo_order():
    r = make_router()
    a, b = ip_packet("10.0.0.1"), ip_packet("10.0.0.2")
    r.receive(a)
    r.receive(b)
    r.route_all()
    assert r.transmit(0).pid == a.pid
    assert r.transmit(0).pid == b.pid

def test_validation():
    r = make_router()
    with pytest.raises(ValueError):
        r.receive(Packet(64))  # missing fields
    with pytest.raises(ValueError):
        r.transmit(7)
    with pytest.raises(ValueError):
        IpRouter(num_next_hops=0)
