"""Tests for the 802.1p QoS Ethernet switch."""

import pytest

from repro.apps import QosEthernetSwitch, SwitchConfig
from repro.net import Packet


def frame(src, dst, pcp=0, length=64, flow=0):
    return Packet(length, flow_id=flow,
                  fields={"src_mac": src, "dst_mac": dst, "pcp": pcp})

def test_learning_and_forwarding():
    sw = QosEthernetSwitch(SwitchConfig(num_ports=3))
    # A on port 0 talks first: learned, frame floods to 1 and 2
    out = sw.ingress(0, frame("A", "B"))
    assert sorted(out) == [1, 2]
    assert sw.mac_table == {"A": 0}
    # B answers from port 1: now known unicast both ways
    out = sw.ingress(1, frame("B", "A"))
    assert out == [0]
    out = sw.ingress(0, frame("A", "B"))
    assert out == [1]

def test_frame_to_own_port_dropped():
    sw = QosEthernetSwitch(SwitchConfig(num_ports=2))
    sw.ingress(0, frame("A", "B"))      # learn A@0
    sw.ingress(1, frame("B", "A"))      # learn B@1
    dropped_before = sw.frames_dropped
    out = sw.ingress(1, frame("X", "B"))  # B lives on the arrival port
    assert out == []
    assert sw.frames_dropped == dropped_before + 1

def test_egress_fifo_within_priority():
    sw = QosEthernetSwitch(SwitchConfig(num_ports=2))
    sw.ingress(0, frame("A", "B"))      # flood -> port1 (learn A)
    sw.ingress(1, frame("B", "A"))      # learn B
    f1, f2 = frame("A", "B"), frame("A", "B")
    sw.ingress(0, f1)
    sw.ingress(0, f2)
    got = [sw.egress(1).pid for _ in range(3)]
    assert got[-2:] == [f1.pid, f2.pid]

def test_strict_priority_egress():
    sw = QosEthernetSwitch(SwitchConfig(num_ports=2))
    sw.ingress(0, frame("A", "B"))      # learn/flood
    sw.ingress(1, frame("B", "A"))      # learn B@1
    sw.egress(1)                        # drain the flood frame
    low = frame("A", "B", pcp=1)
    high = frame("A", "B", pcp=7)
    sw.ingress(0, low)
    sw.ingress(0, high)
    assert sw.egress(1).pid == high.pid  # priority 7 preempts
    assert sw.egress(1).pid == low.pid
    assert sw.egress(1) is None

def test_multisegment_frames_survive_switching():
    sw = QosEthernetSwitch(SwitchConfig(num_ports=2))
    sw.ingress(0, frame("A", "B"))
    sw.ingress(1, frame("B", "A"))
    sw.egress(1)
    big = frame("A", "B", length=1500)
    sw.ingress(0, big)
    out = sw.egress(1)
    assert out.pid == big.pid
    assert out.length_bytes == 1500

def test_queued_frames_accounting():
    sw = QosEthernetSwitch(SwitchConfig(num_ports=2))
    sw.ingress(0, frame("A", "B"))
    assert sw.queued_frames(1) == 1
    sw.egress(1)
    assert sw.queued_frames(1) == 0

def test_flood_counts():
    sw = QosEthernetSwitch(SwitchConfig(num_ports=4))
    sw.ingress(0, frame("A", "UNKNOWN"))
    assert sw.frames_flooded == 1

def test_validation():
    sw = QosEthernetSwitch(SwitchConfig(num_ports=2))
    with pytest.raises(ValueError):
        sw.ingress(5, frame("A", "B"))
    with pytest.raises(ValueError):
        sw.ingress(0, Packet(64, fields={"src_mac": "A"}))  # no dst
    with pytest.raises(ValueError):
        sw.ingress(0, frame("A", "B", pcp=9))
    with pytest.raises(ValueError):
        SwitchConfig(num_ports=1)
