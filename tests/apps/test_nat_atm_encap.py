"""Tests for the NAT gateway, ATM switch and PPP encapsulation apps."""

import pytest

from repro.apps import AtmSwitch, NatGateway, PppEncapsulator
from repro.net import Packet, segment_into_cells

# ------------------------------------------------------------------ NAT

def out_pkt(src=("192.168.1.10", 1234), length=64):
    return Packet(length, fields={"src_ip": src[0], "src_port": src[1]})

def in_pkt(dst, length=64):
    return Packet(length, fields={"dst_ip": dst[0], "dst_port": dst[1]})

def test_outbound_rewrites_source():
    nat = NatGateway(public_ip="1.2.3.4", first_public_port=5000)
    p = nat.outbound(out_pkt())
    assert p.fields["src_ip"] == "1.2.3.4"
    assert p.fields["src_port"] == 5000
    assert nat.active_bindings == 1

def test_binding_reused_for_same_endpoint():
    nat = NatGateway()
    a = nat.outbound(out_pkt(("10.0.0.1", 99)))
    b = nat.outbound(out_pkt(("10.0.0.1", 99)))
    assert a.fields["src_port"] == b.fields["src_port"]
    assert nat.active_bindings == 1

def test_distinct_endpoints_get_distinct_ports():
    nat = NatGateway()
    a = nat.outbound(out_pkt(("10.0.0.1", 1)))
    b = nat.outbound(out_pkt(("10.0.0.2", 1)))
    assert a.fields["src_port"] != b.fields["src_port"]

def test_inbound_reverse_translation():
    nat = NatGateway(public_ip="1.2.3.4", first_public_port=7000)
    nat.outbound(out_pkt(("192.168.1.5", 443)))
    reply = nat.inbound(in_pkt(("1.2.3.4", 7000)))
    assert reply.fields["dst_ip"] == "192.168.1.5"
    assert reply.fields["dst_port"] == 443
    assert nat.translated_in == 1

def test_inbound_without_binding_dropped():
    nat = NatGateway()
    free = nat.mms.pqm.free_segments
    assert nat.inbound(in_pkt(("9.9.9.9", 1))) is None
    assert nat.dropped == 1
    assert nat.mms.pqm.free_segments == free  # delete reclaimed the slot

def test_drain_returns_translated_packets_in_order():
    nat = NatGateway()
    a = nat.outbound(out_pkt(("10.0.0.1", 1)))
    b = nat.outbound(out_pkt(("10.0.0.2", 2)))
    assert nat.drain(outside=True).pid == a.pid
    assert nat.drain(outside=True).pid == b.pid
    assert nat.drain(outside=True) is None

def test_nat_field_validation():
    nat = NatGateway()
    with pytest.raises(ValueError):
        nat.outbound(Packet(64))
    with pytest.raises(ValueError):
        nat.inbound(Packet(64))

# ------------------------------------------------------------------ ATM

def test_atm_cross_connect_and_remap():
    sw = AtmSwitch(num_ports=3)
    sw.vcs.connect(0, vpi=1, vci=100, out_port=2, new_vpi=7, new_vci=200)
    cells = segment_into_cells(Packet(100), vpi=1, vci=100)
    for c in cells:
        out = sw.switch_cell(0, c)
        assert out.out_port == 2
        assert out.cell.vpi == 7
        assert out.cell.vci == 200
    assert sw.cells_switched == len(cells)
    assert sw.queued_cells(2) == len(cells)

def test_atm_unknown_vc_dropped():
    sw = AtmSwitch()
    cells = segment_into_cells(Packet(48), vpi=9, vci=9)
    assert sw.switch_cell(0, cells[0]) is None
    assert sw.cells_dropped == 1

def test_atm_transmit_order_and_aal5_markers():
    sw = AtmSwitch()
    sw.vcs.connect(0, 1, 1, out_port=1, new_vpi=1, new_vci=1)
    cells = segment_into_cells(Packet(100), vpi=1, vci=1)
    for c in cells:
        sw.switch_cell(0, c)
    got = [sw.transmit(1) for _ in range(len(cells))]
    assert [g.cell.index for g in got] == [0, 1, 2]
    assert [g.cell.last for g in got] == [False, False, True]
    assert sw.transmit(1) is None

def test_atm_validation():
    sw = AtmSwitch()
    with pytest.raises(ValueError):
        sw.transmit(9)
    with pytest.raises(ValueError):
        sw.vcs.connect(-1, 0, 0, 0, 0, 0)
    with pytest.raises(ValueError):
        AtmSwitch(num_ports=1)

# ----------------------------------------------------------------- PPP

def test_encapsulate_prepends_header_segment():
    enc = PppEncapsulator()
    enc.load(Packet(128))          # 2 full segments
    assert enc.encapsulate_head() == 3
    out = enc.unload()
    assert out.length_bytes == 128 + 64  # header segment added

def test_trailer_appended_after_full_tail():
    enc = PppEncapsulator(trailer_bytes=4)
    enc.load(Packet(128))
    assert enc.add_trailer() == 3
    out = enc.unload()
    assert out.length_bytes == 128 + 4

def test_trailer_pads_single_short_segment():
    enc = PppEncapsulator(trailer_bytes=4)
    enc.load(Packet(40))
    enc.add_trailer()
    out = enc.unload()
    assert out.length_bytes == 64 + 4  # padded then trailed

def test_trailer_on_short_multiseg_tail_rejected():
    enc = PppEncapsulator()
    enc.load(Packet(100))  # 64 + 36: short tail, 2 segments
    with pytest.raises(ValueError):
        enc.add_trailer()

def test_decapsulation_removes_header_without_copying():
    enc = PppEncapsulator()
    enc.load(Packet(128))
    enc.encapsulate_head()
    assert enc.decapsulate_head() == 2
    out = enc.unload()
    assert out.length_bytes == 128

def test_roundtrip_encap_decap_identity():
    enc = PppEncapsulator()
    p = Packet(640)
    enc.load(p)
    enc.encapsulate_head()
    enc.decapsulate_head()
    out = enc.unload()
    assert out.length_bytes == p.length_bytes
    assert out.pid == p.pid

def test_stats_and_validation():
    enc = PppEncapsulator()
    enc.load(Packet(64))
    enc.encapsulate_head()
    enc.decapsulate_head()
    s = enc.stats()
    assert s.encapsulated == 1
    assert s.decapsulated == 1
    with pytest.raises(ValueError):
        PppEncapsulator(trailer_bytes=0)
    assert PppEncapsulator().unload() is None
